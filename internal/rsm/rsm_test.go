package rsm

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

// coreProto adapts a compiled core plan to the slot Protocol.
type coreProto struct {
	env    *core.Env
	rounds int
}

func (p coreProto) Rounds() int { return p.rounds }
func (p coreProto) NewReplica(id int, initial Value) (InstanceReplica, error) {
	return core.NewReplica(p.env, id, initial, nil)
}

// exponentialFactory builds slot protocols for the paper's Exponential
// algorithm, caching the per-source plan (slots with the same source share
// their read-only environment, as interactive consistency does). The
// cache is locked because tests share one factory across a replica set,
// and over TCP each node resolves its slots from its own goroutine.
func exponentialFactory(t *testing.T, n, tt int) func(slot, source int) (Protocol, error) {
	t.Helper()
	var mu sync.Mutex
	cache := map[int]Protocol{}
	return func(slot, source int) (Protocol, error) {
		mu.Lock()
		defer mu.Unlock()
		if p, ok := cache[source]; ok {
			return p, nil
		}
		plan, err := core.NewPlan(core.Exponential, n, tt, 0, source)
		if err != nil {
			return nil, err
		}
		env, err := core.NewEnv(plan)
		if err != nil {
			return nil, err
		}
		p := coreProto{env: env, rounds: plan.TotalRounds}
		cache[source] = p
		return p, nil
	}
}

// logSetup captures one whole-cluster test configuration.
type logSetup struct {
	cfg      Config
	byz      map[int]bool
	submit   map[int][]Value // per receiving replica, in order
	strategy string
}

// build constructs the full replica set with fault injection and queued
// submissions.
func (s logSetup) build(t *testing.T) []*Replica {
	t.Helper()
	replicas := make([]*Replica, s.cfg.N)
	for id := 0; id < s.cfg.N; id++ {
		var opts []ReplicaOption
		if s.byz[id] {
			opts = append(opts, WithByzantine(s.strategy, 42))
		}
		r, err := NewReplica(s.cfg, id, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmd := range s.submit[id] {
			if err := r.Submit(cmd); err != nil {
				t.Fatal(err)
			}
		}
		replicas[id] = r
	}
	return replicas
}

// checkIdenticalLogs asserts the acceptance property: every correct
// replica committed the same full log, and slots sourced by correct
// replicas carry exactly the commands those replicas queued.
func checkIdenticalLogs(t *testing.T, s logSetup, replicas []*Replica) []Entry {
	t.Helper()
	var ref []Entry
	for id, r := range replicas {
		if s.byz[id] {
			continue
		}
		if err := r.Err(); err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		entries := r.Entries()
		if len(entries) != s.cfg.Slots {
			t.Fatalf("replica %d committed %d slots, want %d", id, len(entries), s.cfg.Slots)
		}
		if ref == nil {
			ref = entries
			continue
		}
		if !reflect.DeepEqual(entries, ref) {
			t.Fatalf("replica %d log diverges:\n%v\nvs\n%v", id, entries, ref)
		}
	}

	// Slots sourced by a correct replica commit its queue, in order, with
	// no-op fill for unfilled positions (validity per batch position).
	for slot := 0; slot < s.cfg.Slots; slot++ {
		e := ref[slot]
		if e.Slot != slot || e.Source != slot%s.cfg.N {
			t.Fatalf("slot %d entry mislabeled: %+v", slot, e)
		}
		if s.byz[e.Source] {
			continue
		}
		turn := slot / s.cfg.N // how many earlier slots this source owned
		queue := s.submit[e.Source]
		lo := turn * s.cfg.BatchSize
		want := make([]Value, s.cfg.BatchSize)
		for p := range want {
			if lo+p < len(queue) {
				want[p] = queue[lo+p]
			}
		}
		if !reflect.DeepEqual(e.Batch, want) {
			t.Fatalf("slot %d (source %d): batch %v, want %v", slot, e.Source, e.Batch, want)
		}
	}

	// Committed channels drained and closed, snapshots identical.
	var snap []Value
	for id, r := range replicas {
		if s.byz[id] {
			continue
		}
		count := 0
		for range r.Committed() {
			count++
		}
		if count != s.cfg.Slots {
			t.Fatalf("replica %d committed channel carried %d entries, want %d", id, count, s.cfg.Slots)
		}
		if snap == nil {
			snap = r.Snapshot()
		} else if !reflect.DeepEqual(snap, r.Snapshot()) {
			t.Fatalf("replica %d snapshot diverges", id)
		}
	}
	return ref
}

// sevenNodeSetup: n=7, t=2, replicas 2 and 5 Byzantine (replica 2 sources
// slots 2 and 9 — the Byzantine-source case), replica 3 correct but
// silent (no-op fill), mixed queue depths elsewhere.
func sevenNodeSetup(t *testing.T, window int) logSetup {
	t.Helper()
	return logSetup{
		cfg: Config{
			N: 7, Slots: 14, Window: window, BatchSize: 3,
			Protocol: exponentialFactory(t, 7, 2),
		},
		byz:      map[int]bool{2: true, 5: true},
		strategy: "splitbrain",
		submit: map[int][]Value{
			0: {11, 12, 13, 14, 15, 16}, // both sourced slots full
			1: {21, 22, 23, 24},         // second slot half-filled
			2: {31, 32},                 // Byzantine receiver: may burn its slots
			4: {41},
			5: {51},
			6: {61, 62, 63},
		},
	}
}

func TestCommitsIdenticalLogsSim(t *testing.T) {
	s := sevenNodeSetup(t, 4)
	replicas := s.build(t)
	stats, err := RunSim(replicas, false)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MuxTicks([]int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, 4)
	if stats.Rounds != want || stats.Rounds != replicas[0].TotalTicks() {
		t.Fatalf("ran %d ticks, want %d", stats.Rounds, want)
	}
	ref := checkIdenticalLogs(t, s, replicas)

	// Correct-but-silent replica 3: both its slots commit pure no-ops.
	for _, slot := range []int{3, 10} {
		if len(ref[slot].Commands) != 0 {
			t.Fatalf("silent source slot %d committed %v", slot, ref[slot].Commands)
		}
	}
	// Pipelining: 14 slots of 3 rounds in a window of 4 beat the
	// sequential 42 ticks.
	if seq := 14 * 3; stats.Rounds >= seq {
		t.Fatalf("pipeline used %d ticks, sequential needs %d", stats.Rounds, seq)
	}
}

func TestCommitsIdenticalLogsTCP(t *testing.T) {
	s := logSetup{
		cfg: Config{
			N: 4, Slots: 8, Window: 2, BatchSize: 2,
			Protocol: exponentialFactory(t, 4, 1),
		},
		byz:      map[int]bool{3: true}, // sources slots 3 and 7
		strategy: "splitbrain",
		submit: map[int][]Value{
			0: {101, 102, 103, 104},
			1: {111},
			3: {131, 132},
		},
	}

	tcpReplicas := s.build(t)
	tcpStats, err := RunTCP(tcpReplicas)
	if err != nil {
		t.Fatal(err)
	}
	tcpRef := checkIdenticalLogs(t, s, tcpReplicas)

	// The TCP pipeline must commit exactly the log the in-process engine
	// commits for the same configuration (transport is behavior-
	// preserving, adversaries included).
	simReplicas := s.build(t)
	simStats, err := RunSim(simReplicas, false)
	if err != nil {
		t.Fatal(err)
	}
	simRef := checkIdenticalLogs(t, s, simReplicas)
	if !reflect.DeepEqual(tcpRef, simRef) {
		t.Fatalf("TCP log diverges from sim log:\n%v\nvs\n%v", tcpRef, simRef)
	}
	if tcpStats.Rounds != simStats.Rounds {
		t.Fatalf("TCP ran %d ticks, sim %d", tcpStats.Rounds, simStats.Rounds)
	}
}

// TestPipeliningPreservesLog: the same workload commits the same log at
// window 1 (sequential single-shot) and window 4, in fewer ticks.
func TestPipeliningPreservesLog(t *testing.T) {
	seqSetup := sevenNodeSetup(t, 1)
	seqReplicas := seqSetup.build(t)
	seqStats, err := RunSim(seqReplicas, false)
	if err != nil {
		t.Fatal(err)
	}
	seqRef := checkIdenticalLogs(t, seqSetup, seqReplicas)

	pipeSetup := sevenNodeSetup(t, 4)
	pipeReplicas := pipeSetup.build(t)
	pipeStats, err := RunSim(pipeReplicas, true) // parallel engine, same result
	if err != nil {
		t.Fatal(err)
	}
	pipeRef := checkIdenticalLogs(t, pipeSetup, pipeReplicas)

	if !reflect.DeepEqual(seqRef, pipeRef) {
		t.Fatal("window changes the committed log")
	}
	if pipeStats.Rounds >= seqStats.Rounds {
		t.Fatalf("window 4 used %d ticks, window 1 used %d", pipeStats.Rounds, seqStats.Rounds)
	}
}

func TestSubmitRejectsNoOp(t *testing.T) {
	s := sevenNodeSetup(t, 2)
	r, err := NewReplica(s.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(NoOp); err == nil {
		t.Fatal("no-op accepted as a command")
	}
	if err := r.Submit(7); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestWithByzantineValidation(t *testing.T) {
	cfg := Config{N: 4, Slots: 2, Window: 1, BatchSize: 1, Protocol: exponentialFactory(t, 4, 1)}
	if _, err := NewReplica(cfg, 0, WithByzantine("bogus", 1)); err == nil {
		t.Error("unknown strategy accepted")
	}
	wrap := func(slot int, proc sim.Processor) sim.Processor { return proc }
	if _, err := NewReplica(cfg, 0, WithByzantine("splitbrain", 1), WithWrap(wrap)); err == nil {
		t.Error("WithByzantine combined with WithWrap accepted")
	}
	if _, err := NewReplica(cfg, 0, WithByzantine("crash", 1)); err != nil {
		t.Error(err)
	}
}

// brokenProto fails lazy position-replica construction — a mid-run
// failure, since instances are built when their slot enters the window.
type brokenProto struct{ Protocol }

func (b brokenProto) NewReplica(id int, initial Value) (InstanceReplica, error) {
	return nil, fmt.Errorf("boom")
}

// TestRunTCPSurfacesMidRunFailure: when one node dies mid-pipeline, the
// mesh must tear down and report the error rather than deadlock peers in
// the lockstep barrier.
func TestRunTCPSurfacesMidRunFailure(t *testing.T) {
	base := exponentialFactory(t, 4, 1)
	mkCfg := func(failSlot int) Config {
		return Config{
			N: 4, Slots: 6, Window: 1, BatchSize: 1,
			Protocol: func(slot, source int) (Protocol, error) {
				p, err := base(slot, source)
				if err != nil {
					return nil, err
				}
				if slot == failSlot {
					return brokenProto{p}, nil
				}
				return p, nil
			},
		}
	}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		failSlot := -1
		if id == 0 {
			failSlot = 3 // replica 0 dies when slot 3 enters its window
		}
		r, err := NewReplica(mkCfg(failSlot), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunTCP(replicas)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mid-run failure not surfaced")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunTCP deadlocked on a mid-run node failure")
	}
}

func TestConfigValidation(t *testing.T) {
	proto := exponentialFactory(t, 4, 1)
	good := Config{N: 4, Slots: 2, Window: 1, BatchSize: 1, Protocol: proto}
	bad := []Config{
		{N: 1, Slots: 2, Window: 1, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 0, Window: 1, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 2, Window: 0, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 2, Window: 1, BatchSize: 0, Protocol: proto},
		{N: 4, Slots: 2, Window: 1, BatchSize: 1},
	}
	for i, cfg := range bad {
		if _, err := NewReplica(cfg, 0); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewReplica(good, 9); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := NewReplica(good, 0); err != nil {
		t.Error(err)
	}
}

// noopProto is a one-round, zero-message slot protocol (the "blacklisted
// slot" gear) for schedule tests.
type noopProto struct{}

func (noopProto) Rounds() int { return 1 }
func (noopProto) NewReplica(id int, initial Value) (InstanceReplica, error) {
	return &noopRep{id: id}, nil
}

type noopRep struct{ id int }

func (r *noopRep) ID() int                                { return r.id }
func (r *noopRep) PrepareRound(round int) [][]byte        { return nil }
func (r *noopRep) DeliverRound(round int, inbox [][]byte) {}
func (r *noopRep) Decided() (Value, bool)                 { return NoOp, true }
func (r *noopRep) Err() error                             { return nil }

// gearSetup builds a replica set whose slot protocols resolve lazily:
// slots sourced by a source already convicted in the committed prefix (a
// sourced slot committed no commands) run the one-round noop protocol,
// everything else the given base factory.
func gearSetup(t *testing.T, n, tt, slots, window int, base func(slot, source int) (Protocol, error)) Config {
	t.Helper()
	return Config{
		N: n, Slots: slots, Window: window, BatchSize: 2,
		GearProtocol: func(slot, source int, prefix []Entry) (Protocol, error) {
			for _, e := range prefix {
				if e.Source == source && len(e.Commands) == 0 {
					return noopProto{}, nil
				}
			}
			return base(slot, source)
		},
	}
}

// TestGearProtocolResolvesFromPrefix: a gear-scheduled log resolves each
// slot's protocol from the committed prefix at the slot's start tick, all
// correct replicas resolve identically, and the shifted schedule beats
// the static one in ticks while committing the same commands.
func TestGearProtocolResolvesFromPrefix(t *testing.T) {
	const n, tt, slots, window = 4, 1, 12, 2
	base := exponentialFactory(t, n, tt)

	submit := map[int][]Value{
		0: {11, 12, 13, 14, 15, 16},
		1: {21, 22, 23, 24, 25, 26},
		2: {31, 32, 33, 34, 35, 36},
		// replica 3 silent: its slots burn, convicting it for the policy.
	}
	build := func(geared bool) []*Replica {
		var cfg Config
		if geared {
			cfg = gearSetup(t, n, tt, slots, window, base)
		} else {
			cfg = Config{N: n, Slots: slots, Window: window, BatchSize: 2, Protocol: base}
		}
		replicas := make([]*Replica, n)
		for id := 0; id < n; id++ {
			r, err := NewReplica(cfg, id)
			if err != nil {
				t.Fatal(err)
			}
			for _, cmd := range submit[id] {
				if err := r.Submit(cmd); err != nil {
					t.Fatal(err)
				}
			}
			replicas[id] = r
		}
		return replicas
	}

	geared := build(true)
	gearStats, err := RunSim(geared, false)
	if err != nil {
		t.Fatal(err)
	}
	static := build(false)
	staticStats, err := RunSim(static, false)
	if err != nil {
		t.Fatal(err)
	}

	var ref []Entry
	for id, r := range geared {
		if err := r.Err(); err != nil {
			t.Fatalf("geared replica %d: %v", id, err)
		}
		entries := r.Entries()
		if len(entries) != slots {
			t.Fatalf("geared replica %d committed %d slots, want %d", id, len(entries), slots)
		}
		if ref == nil {
			ref = entries
		} else if !reflect.DeepEqual(entries, ref) {
			t.Fatalf("geared replica %d log diverges", id)
		}
	}

	// Slot 3 (source 3's first) runs the base gear and burns; slots 7 and
	// 11 resolve after that burn commits and must have shifted to the
	// one-round gear.
	for _, slot := range []int{7, 11} {
		if rounds := geared[0].SlotRounds(slot); rounds != 1 {
			t.Fatalf("slot %d ran %d rounds, want the 1-round blacklist gear", slot, rounds)
		}
		if len(ref[slot].Commands) != 0 {
			t.Fatalf("blacklisted slot %d committed %v", slot, ref[slot].Commands)
		}
	}
	// The shift must not change what commits: correct sources' slots carry
	// the same batches as the static log.
	staticRef := static[0].Entries()
	for slot := range ref {
		if !reflect.DeepEqual(ref[slot].Batch, staticRef[slot].Batch) {
			t.Fatalf("slot %d: geared batch %v, static batch %v", slot, ref[slot].Batch, staticRef[slot].Batch)
		}
	}
	if gearStats.Rounds >= staticStats.Rounds {
		t.Fatalf("geared log used %d ticks, static %d", gearStats.Rounds, staticStats.Rounds)
	}
}

// TestGearProtocolTCPMatchesSim: the same gear-scheduled log commits the
// same entries in the same number of ticks over the TCP mesh.
func TestGearProtocolTCPMatchesSim(t *testing.T) {
	const n, tt, slots, window = 4, 1, 8, 2
	base := exponentialFactory(t, n, tt)
	build := func() []*Replica {
		cfg := gearSetup(t, n, tt, slots, window, base)
		replicas := make([]*Replica, n)
		for id := 0; id < n; id++ {
			r, err := NewReplica(cfg, id)
			if err != nil {
				t.Fatal(err)
			}
			if id != 3 { // replica 3 stays silent and gets convicted
				for _, cmd := range []Value{Value(10*id + 1), Value(10*id + 2), Value(10*id + 3)} {
					if err := r.Submit(cmd); err != nil {
						t.Fatal(err)
					}
				}
			}
			replicas[id] = r
		}
		return replicas
	}

	tcpReplicas := build()
	tcpStats, err := RunTCP(tcpReplicas)
	if err != nil {
		t.Fatal(err)
	}
	simReplicas := build()
	simStats, err := RunSim(simReplicas, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tcpReplicas[0].Entries(), simReplicas[0].Entries()) {
		t.Fatal("TCP geared log diverges from sim geared log")
	}
	if tcpStats.Rounds != simStats.Rounds {
		t.Fatalf("TCP ran %d ticks, sim %d", tcpStats.Rounds, simStats.Rounds)
	}
	if rounds := tcpReplicas[0].SlotRounds(7); rounds != 1 {
		t.Fatalf("slot 7 ran %d rounds over TCP, want 1", rounds)
	}
}

// divergentGearConfig gives replica divergeID a shorter protocol for slot
// 1 than everyone else — an impure gear policy's signature.
func divergentGearConfig(t *testing.T, base func(slot, source int) (Protocol, error), n, slots, divergeID, id int) Config {
	t.Helper()
	return Config{
		N: n, Slots: slots, Window: 1, BatchSize: 1,
		GearProtocol: func(slot, source int, prefix []Entry) (Protocol, error) {
			if slot == 1 && id == divergeID {
				return noopProto{}, nil
			}
			return base(slot, source)
		},
	}
}

// TestGearDivergenceSurfacesSim: a divergent gear schedule stops the sim
// drive loop with a schedule-divergence error instead of hanging or
// silently committing diverging logs.
func TestGearDivergenceSurfacesSim(t *testing.T) {
	const n, slots = 4, 3
	base := exponentialFactory(t, n, 1)
	replicas := make([]*Replica, n)
	for id := 0; id < n; id++ {
		r, err := NewReplica(divergentGearConfig(t, base, n, slots, 0, id), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	_, err := RunSim(replicas, false)
	if err == nil {
		t.Fatal("divergent gear schedule not surfaced")
	}
	if !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("divergence error unclear: %v", err)
	}
}

// TestGearDivergenceSurfacesTCP: the same divergence fails fast over the
// loopback TCP fabric with the same schedule-divergence diagnosis as the
// in-process fabrics — the runtime compares the local schedules before a
// byte moves. (In a true multi-process mesh no runtime sees more than
// its own schedule; the wire-level frame instance/round mismatch guard
// covering that path is tested in the transport package.)
func TestGearDivergenceSurfacesTCP(t *testing.T) {
	const n, slots = 4, 3
	base := exponentialFactory(t, n, 1)
	replicas := make([]*Replica, n)
	for id := 0; id < n; id++ {
		r, err := NewReplica(divergentGearConfig(t, base, n, slots, 0, id), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunTCP(replicas)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("divergent gear schedule not surfaced over TCP")
		}
		if !strings.Contains(err.Error(), "divergence") {
			t.Fatalf("want the schedule-divergence diagnosis, got: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunTCP hung on a divergent gear schedule")
	}
}

// TestRunSimSurfacesFactoryError: a slot factory failing mid-run (its
// slot enters the window after the pipeline started) must fail RunSim
// with that error promptly — not leave the replica silently mute for the
// rest of the run.
func TestRunSimSurfacesFactoryError(t *testing.T) {
	base := exponentialFactory(t, 4, 1)
	mkCfg := func(failSlot int) Config {
		return Config{
			N: 4, Slots: 6, Window: 1, BatchSize: 1,
			Protocol: func(slot, source int) (Protocol, error) {
				p, err := base(slot, source)
				if err != nil {
					return nil, err
				}
				if slot == failSlot {
					return brokenProto{p}, nil
				}
				return p, nil
			},
		}
	}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		failSlot := -1
		if id == 2 {
			failSlot = 3
		}
		r, err := NewReplica(mkCfg(failSlot), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	_, err := RunSim(replicas, false)
	if err == nil {
		t.Fatal("poisoned factory did not fail the run")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("run failed without the factory's error: %v", err)
	}
}

// TestRunRejectsMismatchedSchedules: replica sets whose configurations
// disagree on the lockstep schedule (slot count, window, or per-slot
// rounds) are rejected with a clear error before any tick runs.
func TestRunRejectsMismatchedSchedules(t *testing.T) {
	exp := exponentialFactory(t, 4, 1)
	short := func(slot, source int) (Protocol, error) { return noopProto{}, nil }

	build := func(cfg Config, id int) *Replica {
		r, err := NewReplica(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := Config{N: 4, Slots: 4, Window: 2, BatchSize: 1, Protocol: exp}

	cases := []struct {
		name string
		odd  Config // replica 2's configuration
	}{
		{"slots", Config{N: 4, Slots: 6, Window: 2, BatchSize: 1, Protocol: exp}},
		{"window", Config{N: 4, Slots: 4, Window: 3, BatchSize: 1, Protocol: exp}},
		{"rounds", Config{N: 4, Slots: 4, Window: 2, BatchSize: 1, Protocol: short}},
	}
	for _, c := range cases {
		replicas := []*Replica{build(base, 0), build(base, 1), build(c.odd, 2), build(base, 3)}
		_, err := RunSim(replicas, false)
		if err == nil {
			t.Errorf("%s mismatch accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), "schedule") {
			t.Errorf("%s mismatch error unclear: %v", c.name, err)
		}
		if _, err := RunTCP(replicas); err == nil {
			t.Errorf("%s mismatch accepted over TCP", c.name)
		}
	}

	// Replica count must match every replica's configured N.
	small := []*Replica{build(base, 0), build(base, 1)}
	if _, err := RunSim(small, false); err == nil {
		t.Error("short replica set accepted")
	}
}

// TestGearProtocolMayTouchReplica: the GearProtocol callback is user
// code and may consult its replica's public API (Pending, Entries,
// SlotRounds) while deciding a gear. The resolver must not hold the
// replica's lock across the callback — this test deadlocks if it does.
func TestGearProtocolMayTouchReplica(t *testing.T) {
	const n, slots = 4, 3
	base := exponentialFactory(t, n, 1)
	replicas := make([]*Replica, n)
	for id := 0; id < n; id++ {
		id := id
		cfg := Config{
			N: n, Slots: slots, Window: 1, BatchSize: 1,
			GearProtocol: func(slot, source int, prefix []Entry) (Protocol, error) {
				r := replicas[id]
				_ = r.Pending()
				_ = r.Entries()
				_ = r.SlotRounds(slot)
				return base(slot, source)
			},
		}
		r, err := NewReplica(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunSim(replicas, false)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunSim deadlocked on a replica-touching gear callback")
	}
}

// TestRunRejectsAllFaultInjected: a replica set with every replica
// fault-injected has no trustworthy schedule or error reporter — the
// drive loops must reject it up front, not spin forever on a wedge.
func TestRunRejectsAllFaultInjected(t *testing.T) {
	cfg := Config{N: 4, Slots: 4, Window: 2, BatchSize: 1, Protocol: exponentialFactory(t, 4, 1)}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		r, err := NewReplica(cfg, id, WithByzantine("silent", 1))
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	_, err := RunSim(replicas, false)
	if err == nil {
		t.Fatal("all-fault-injected set accepted")
	}
	if !strings.Contains(err.Error(), "no correct replicas") {
		t.Fatalf("all-fault-injected error unclear: %v", err)
	}
}

// TestStaticWedgeBlamesReplicaNotGears: on a statically configured log a
// fault-injected replica whose slot factory fails wedges its mux; the
// run must stop at the static schedule's end blaming the wedged replica
// (with its factory error), not gear policies the config does not use.
func TestStaticWedgeBlamesReplicaNotGears(t *testing.T) {
	base := exponentialFactory(t, 4, 1)
	mkCfg := func(failSlot int) Config {
		return Config{
			N: 4, Slots: 6, Window: 1, BatchSize: 1,
			Protocol: func(slot, source int) (Protocol, error) {
				p, err := base(slot, source)
				if err != nil {
					return nil, err
				}
				if slot == failSlot {
					return brokenProto{p}, nil
				}
				return p, nil
			},
		}
	}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		failSlot := -1
		var opts []ReplicaOption
		if id == 2 {
			failSlot = 3
			opts = append(opts, WithByzantine("silent", 1))
		}
		r, err := NewReplica(mkCfg(failSlot), id, opts...)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunSim(replicas, false)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("wedged fault-injected replica not surfaced")
		}
		if strings.Contains(err.Error(), "gear policies") {
			t.Fatalf("static wedge blamed on gear policies: %v", err)
		}
		if !strings.Contains(err.Error(), "wedged") || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("wedge error missing the replica's factory error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunSim spun on a wedged static schedule")
	}
}

// TestByzantineStrategyFreshPerSlot: the fault-injection wrapper must
// construct a fresh strategy per slot — a stateful strategy (stutter)
// shared across pipelined slots would mix their payload histories.
func TestByzantineStrategyFreshPerSlot(t *testing.T) {
	cfg := Config{N: 4, Slots: 2, Window: 2, BatchSize: 1, Protocol: exponentialFactory(t, 4, 1)}
	r, err := NewReplica(cfg, 0, WithByzantine("stutter", 1))
	if err != nil {
		t.Fatal(err)
	}
	proc0, err := r.startSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	proc1, err := r.startSlot(1)
	if err != nil {
		t.Fatal(err)
	}
	p0, ok0 := proc0.(*adversary.Processor)
	p1, ok1 := proc1.(*adversary.Processor)
	if !ok0 || !ok1 {
		t.Fatal("startSlot did not produce adversary processors")
	}
	if p0.Strategy() == p1.Strategy() {
		t.Fatal("one strategy instance shared across slots")
	}
}

// TestWorkersParallelWithStatefulAdversaries drives the fully
// parallelized stack — the goroutine-per-replica network engine AND the
// per-instance worker pool inside each replica's mux — with a stateful
// adversary strategy ("stutter" replays its previous round's payload, so
// it carries mutable state between rounds). Each slot owns a fresh
// strategy instance and the pool never runs one slot's rounds
// concurrently with themselves, so under -race this must be clean, and
// the committed logs must match the sequential engines' exactly.
func TestWorkersParallelWithStatefulAdversaries(t *testing.T) {
	run := func(workers int, parallel bool) []Entry {
		s := sevenNodeSetup(t, 4)
		s.strategy = "stutter"
		s.cfg.Workers = workers
		replicas := s.build(t)
		if _, err := RunSim(replicas, parallel); err != nil {
			t.Fatal(err)
		}
		return checkIdenticalLogs(t, s, replicas)
	}
	seq := run(0, false)
	par := run(4, true)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("worker pool diverges from sequential:\n%v\nvs\n%v", par, seq)
	}
}

// TestAbortClosesCommittedOnWedge: an aborted run must not leak
// Committed consumers. A poisoned slot factory wedges the run mid-log;
// consumers ranging over every replica's Committed channel (the
// documented consumption pattern) must unblock with the log cut short
// and the error retrievable via Err — before the fix they hung forever.
func TestAbortClosesCommittedOnWedge(t *testing.T) {
	base := exponentialFactory(t, 4, 1)
	mkCfg := func(failSlot int) Config {
		return Config{
			N: 4, Slots: 6, Window: 1, BatchSize: 1,
			Protocol: func(slot, source int) (Protocol, error) {
				p, err := base(slot, source)
				if err != nil {
					return nil, err
				}
				if slot == failSlot {
					return brokenProto{p}, nil
				}
				return p, nil
			},
		}
	}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		failSlot := -1
		if id == 2 {
			failSlot = 3
		}
		r, err := NewReplica(mkCfg(failSlot), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}

	// Consumers attach before the run, as examples/replicatedlog does.
	drained := make(chan int, len(replicas))
	var wg sync.WaitGroup
	for id, r := range replicas {
		wg.Add(1)
		go func(id int, r *Replica) {
			defer wg.Done()
			count := 0
			for range r.Committed() {
				count++
			}
			drained <- count
		}(id, r)
	}

	if _, err := RunSim(replicas, false); err == nil {
		t.Fatal("poisoned factory did not fail the run")
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Committed consumers still hanging after an aborted run")
	}
	close(drained)
	for count := range drained {
		if count >= 6 {
			t.Fatalf("consumer drained %d entries from a log that wedged at slot 3", count)
		}
	}
	for _, r := range replicas {
		if r.Err() == nil {
			t.Fatalf("replica %d has no retrievable error after the abort", r.ID())
		}
	}
}

// roundCountRejector stands in for a strategy whose constructor rejects
// the slot's resolved round count; rejectingNew is swapped into the
// newStrategy seam.
func rejectingNew(name string, totalRounds int) (adversary.Strategy, error) {
	return nil, fmt.Errorf("strategy %q rejects %d rounds", name, totalRounds)
}

// TestByzantineWrapperFailureFailsSlot: when a slot's adversary strategy
// cannot be built, the slot's Start must fail — and with it the run —
// instead of silently running the slot unwrapped. Before the fix the
// error was recorded but the "faulty" replica quietly behaved honestly,
// so fault-injection tests passed vacuously.
func TestByzantineWrapperFailureFailsSlot(t *testing.T) {
	orig := newStrategy
	newStrategy = rejectingNew
	defer func() { newStrategy = orig }()

	s := logSetup{
		cfg: Config{
			N: 4, Slots: 4, Window: 1, BatchSize: 1,
			Protocol: exponentialFactory(t, 4, 1),
		},
		byz:      map[int]bool{3: true},
		strategy: "splitbrain",
		submit:   map[int][]Value{0: {11}, 1: {21}},
	}
	replicas := s.build(t)
	_, err := RunSim(replicas, false)
	if err == nil {
		t.Fatal("run completed with a faulty replica silently running honest slots")
	}
	if !strings.Contains(err.Error(), "byzantine wrapper") || !strings.Contains(err.Error(), "rejects 2 rounds") {
		t.Fatalf("slot failure not surfaced with the strategy error: %v", err)
	}
}

// newTestFabric builds one of the three fabrics for n nodes.
func newTestFabric(t *testing.T, kind string, n int) fabric.Fabric {
	t.Helper()
	switch kind {
	case "sim":
		f, err := fabric.NewSim(n)
		if err != nil {
			t.Fatal(err)
		}
		return f
	case "mem":
		f, err := fabric.NewMem(n, fabric.Plan{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return f
	case "tcp":
		f, err := transport.NewMesh(n)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	t.Fatalf("unknown fabric %q", kind)
	return nil
}

// TestAbortMidRunUniformAcrossFabrics: a Replica.Abort fired mid-run (an
// operator or consumer pulling the plug between ticks) must stop the run
// with that error, close every replica's Committed channel, and leave
// the error retrievable via Err — identically on all three fabrics.
// Before the fabric unification the sim loop stopped promptly while the
// TCP loop ran the whole schedule and only surfaced the error at the
// end: different teardown paths, now one.
func TestAbortMidRunUniformAcrossFabrics(t *testing.T) {
	for _, kind := range []string{"sim", "mem", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			const n, slots = 4, 8
			abortErr := fmt.Errorf("operator abort")
			replicas := make([]*Replica, n)
			for id := 0; id < n; id++ {
				var opts []ReplicaOption
				if id == 1 {
					// Fires from the engine's own commit path, mid-tick of
					// a live run: the first committed entry pulls the plug.
					var once sync.Once
					opts = append(opts, WithApply(func(e Entry) {
						once.Do(func() { replicas[1].Abort(abortErr) })
					}))
				}
				r, err := NewReplica(Config{
					N: n, Slots: slots, Window: 2, BatchSize: 1,
					Protocol: exponentialFactory(t, n, 1),
				}, id, opts...)
				if err != nil {
					t.Fatal(err)
				}
				replicas[id] = r
			}

			// Consumers attach before the run, as examples do.
			var wg sync.WaitGroup
			counts := make([]int, n)
			for id, r := range replicas {
				wg.Add(1)
				go func(id int, r *Replica) {
					defer wg.Done()
					for range r.Committed() {
						counts[id]++
					}
				}(id, r)
			}

			done := make(chan error, 1)
			go func() {
				_, err := Run(newTestFabric(t, kind, n), replicas, false)
				done <- err
			}()
			var runErr error
			select {
			case runErr = <-done:
			case <-time.After(30 * time.Second):
				t.Fatalf("%s fabric hung on a mid-run abort", kind)
			}
			if runErr == nil || !strings.Contains(runErr.Error(), "operator abort") {
				t.Fatalf("%s fabric: abort not surfaced as the run error: %v", kind, runErr)
			}

			consumed := make(chan struct{})
			go func() { wg.Wait(); close(consumed) }()
			select {
			case <-consumed:
			case <-time.After(30 * time.Second):
				t.Fatalf("%s fabric: Committed consumers still hanging after the abort", kind)
			}
			for id, r := range replicas {
				if r.Err() == nil {
					t.Fatalf("%s fabric: replica %d has no retrievable error", kind, id)
				}
				if counts[id] >= slots {
					t.Fatalf("%s fabric: consumer %d drained a full log from an aborted run", kind, id)
				}
			}
		})
	}
}

// TestMemFabricChaosCommitsFullLog: the acceptance scenario — a seeded
// chaos schedule with drops on one victim's links plus a partition that
// isolates it and heals — still commits every slot with the correct,
// unaffected replicas in full agreement, and the committed log matches
// the fault-free sim run outside the victim's slots.
func TestMemFabricChaosCommitsFullLog(t *testing.T) {
	const n, tt, slots = 4, 1, 8
	build := func() []*Replica {
		cfg := Config{
			N: n, Slots: slots, Window: 2, BatchSize: 2,
			Protocol: exponentialFactory(t, n, tt),
		}
		replicas := make([]*Replica, n)
		for id := 0; id < n; id++ {
			r, err := NewReplica(cfg, id)
			if err != nil {
				t.Fatal(err)
			}
			for _, cmd := range []Value{Value(10*id + 1), Value(10*id + 2), Value(10*id + 3)} {
				if err := r.Submit(cmd); err != nil {
					t.Fatal(err)
				}
			}
			replicas[id] = r
		}
		return replicas
	}

	plan := fabric.Plan{
		Seed:       1,
		Victims:    []int{3},
		Drop:       0.4,
		Partitions: []fabric.Partition{{From: 3, Until: 7, Group: []int{3}}},
	}
	mem, err := fabric.NewMem(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	chaotic := build()
	if _, err := Run(mem, chaotic, false); err != nil {
		t.Fatal(err)
	}
	affected := map[int]bool{}
	for _, id := range plan.Affected() {
		affected[id] = true
	}

	var ref []Entry
	for id, r := range chaotic {
		if affected[id] {
			continue // degraded beyond the fault model; excluded like a faulty node
		}
		if err := r.Err(); err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		entries := r.Entries()
		if len(entries) != slots {
			t.Fatalf("replica %d committed %d slots under chaos, want %d", id, len(entries), slots)
		}
		if ref == nil {
			ref = entries
		} else if !reflect.DeepEqual(entries, ref) {
			t.Fatalf("replica %d log diverges under chaos", id)
		}
	}
	if mem.Stats().Dropped == 0 || mem.Stats().Cut == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", mem.Stats())
	}

	// Slots sourced by unaffected replicas must commit exactly what a
	// fault-free run commits — the chaos only touched the victim.
	clean := build()
	if _, err := RunSim(clean, false); err != nil {
		t.Fatal(err)
	}
	cleanRef := clean[0].Entries()
	for slot := range ref {
		if affected[ref[slot].Source] {
			continue
		}
		if !reflect.DeepEqual(ref[slot].Batch, cleanRef[slot].Batch) {
			t.Fatalf("slot %d (unaffected source %d): chaos batch %v, clean batch %v",
				slot, ref[slot].Source, ref[slot].Batch, cleanRef[slot].Batch)
		}
	}
}

// TestPreRunRejectionClosesCommitted: a run rejected before its first
// tick (mismatched schedules here) must still seal every replica, so
// Committed consumers attached before the run unblock.
func TestPreRunRejectionClosesCommitted(t *testing.T) {
	exp := exponentialFactory(t, 4, 1)
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		window := 1
		if id == 3 {
			window = 2 // schedule mismatch: rejected by muxes()
		}
		r, err := NewReplica(Config{
			N: 4, Slots: 4, Window: window, BatchSize: 1, Protocol: exp,
		}, id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	var wg sync.WaitGroup
	for _, r := range replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			for range r.Committed() {
			}
		}(r)
	}
	if _, err := RunSim(replicas, false); err == nil {
		t.Fatal("mismatched schedules accepted")
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Committed consumers still hanging after a pre-run rejection")
	}
	for _, r := range replicas {
		if r.Err() == nil {
			t.Fatalf("replica %d has no retrievable error after the rejection", r.ID())
		}
	}
}
