package rsm

import (
	"fmt"

	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

// muxes validates the replica set and returns their schedules as
// processors 0..n-1.
func muxes(replicas []*Replica) ([]sim.Processor, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("rsm: no replicas")
	}
	procs := make([]sim.Processor, len(replicas))
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("rsm: replica %d is nil", i)
		}
		if r.ID() != i {
			return nil, fmt.Errorf("rsm: replica at index %d reports id %d", i, r.ID())
		}
		procs[i] = r.Mux()
	}
	return procs, nil
}

// RunSim drives a full replica set over the in-process synchronous
// network until every slot has committed. The caller checks each correct
// replica's Err and Entries afterwards.
func RunSim(replicas []*Replica, parallel bool) (*sim.Stats, error) {
	procs, err := muxes(replicas)
	if err != nil {
		return nil, err
	}
	var opts []sim.Option
	if parallel {
		opts = append(opts, sim.Parallel())
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		return nil, err
	}
	return nw.Run(replicas[0].TotalTicks())
}

// RunTCP drives a full replica set over a loopback TCP mesh — the same
// lockstep pipeline as RunSim, with every frame crossing a real socket.
// Multi-host deployments run one cmd/logserver process per replica
// instead.
func RunTCP(replicas []*Replica, opts ...transport.Option) (*sim.Stats, error) {
	procs, err := muxes(replicas)
	if err != nil {
		return nil, err
	}
	cluster, err := transport.NewCluster(procs, opts...)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	return cluster.RunMux()
}
