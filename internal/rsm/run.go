package rsm

import (
	"fmt"

	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

// muxes validates the replica set and returns their schedules as
// processors 0..n-1. Beyond ids, it checks that every replica was built
// against the same lockstep schedule (N, Slots, Window, BatchSize, and —
// for statically configured logs — every slot's round count): mismatched
// configurations would not fail fast on their own, they would silently
// desynchronize the pipeline. Gear-scheduled logs resolve round counts at
// runtime, so only the shape is checked here; a divergent GearProtocol is
// caught by the drive loops instead.
func muxes(replicas []*Replica) ([]sim.Processor, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("rsm: no replicas")
	}
	correct := 0
	for _, r := range replicas {
		if r != nil && !r.faultInjected() {
			correct++
		}
	}
	// An all-fault-injected set has no replica whose errors or schedule
	// the drive loops trust: a wedge could spin forever with nothing to
	// report. It is also meaningless — there is no correct log to read.
	if correct == 0 {
		return nil, fmt.Errorf("rsm: no correct replicas: every replica is fault-injected")
	}
	procs := make([]sim.Processor, len(replicas))
	var refKey string
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("rsm: replica %d is nil", i)
		}
		if r.ID() != i {
			return nil, fmt.Errorf("rsm: replica at index %d reports id %d", i, r.ID())
		}
		if r.cfg.N != len(replicas) {
			return nil, fmt.Errorf("rsm: replica %d is configured for %d replicas, running %d", i, r.cfg.N, len(replicas))
		}
		key := r.scheduleKey()
		if i == 0 {
			refKey = key
		} else if key != refKey {
			return nil, fmt.Errorf("rsm: replica %d schedule (%s) differs from replica 0 (%s): all replicas must share identical Window/Slots/rounds configurations", i, key, refKey)
		}
		procs[i] = r.Mux()
	}
	return procs, nil
}

// RunSim drives a full replica set over the in-process synchronous
// network until every slot has committed. Engine errors surface promptly:
// a replica whose mux or protocol fails (e.g. a poisoned slot factory)
// stops the run with that error instead of leaving the replica silently
// mute, and replicas finishing at different ticks — the signature of a
// divergent gear schedule — stop the run with a divergence error. The
// caller still checks each correct replica's Err and Entries afterwards.
func RunSim(replicas []*Replica, parallel bool) (*sim.Stats, error) {
	procs, err := muxes(replicas)
	if err != nil {
		finishRun(replicas, err)
		return nil, err
	}
	stats, err := runSim(replicas, procs, parallel)
	finishRun(replicas, err)
	return stats, err
}

// finishRun seals every replica after a drive loop ends — including runs
// rejected before their first tick: on failure it records the run error
// and closes the Committed channels, so consumers ranging over them
// unblock (the leak this fixes: an aborted run used to leave every
// consumer hanging forever); on success it closes any channel a normal
// completion did not — a fault-injected replica whose shadow state
// diverged from the agreed log never commits its final slot, but its run
// is over all the same.
func finishRun(replicas []*Replica, err error) {
	for _, r := range replicas {
		if r != nil {
			r.Abort(err)
		}
	}
}

func runSim(replicas []*Replica, procs []sim.Processor, parallel bool) (*sim.Stats, error) {
	var opts []sim.Option
	if parallel {
		opts = append(opts, sim.Parallel())
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		return nil, err
	}
	// A statically configured log's schedule length is known up front —
	// bound the run by it so a wedged replica (e.g. a fault-injected one
	// whose slot factory failed) cannot spin the loop past the schedule.
	// Gear-scheduled logs report 0 (unknown) and run until the predicate
	// stops them.
	maxTicks := replicas[0].TotalTicks()
	geared := replicas[0].cfg.GearProtocol != nil
	var runErr error
	stats, err := nw.RunUntil(maxTicks, func(round int) bool {
		done := 0
		for _, r := range replicas {
			// Fault-injected replicas run shadow state; their errors are
			// not engine failures and are ignored, as Run callers do.
			if !r.faultInjected() {
				if rerr := r.Err(); rerr != nil {
					runErr = rerr
					return true
				}
			}
			if r.Mux().Done() {
				done++
			}
		}
		if done == len(replicas) {
			return true
		}
		if done > 0 {
			if geared {
				runErr = fmt.Errorf("rsm: schedule divergence after %d ticks: %d of %d replicas finished early (gear policies must be identical pure functions of the committed prefix)", round, done, len(replicas))
			} else {
				runErr = wedgeErr(replicas, round)
			}
			return true
		}
		return false
	})
	if runErr != nil {
		return nil, runErr
	}
	if err != nil {
		return nil, err
	}
	// A bounded run that exhausted its schedule without every replica
	// finishing wedged without diverging (e.g. every replica stalled the
	// same way); report it rather than returning a short log.
	for _, r := range replicas {
		if !r.Mux().Done() {
			return nil, wedgeErr(replicas, stats.Rounds)
		}
	}
	return stats, nil
}

// wedgeErr describes replicas stuck short of their static schedule,
// preferring a stuck replica's own error (a fault-injected replica's
// failed slot factory, say) over the generic description.
func wedgeErr(replicas []*Replica, round int) error {
	stuck := 0
	for _, r := range replicas {
		if !r.Mux().Done() {
			stuck++
		}
	}
	for _, r := range replicas {
		if !r.Mux().Done() {
			if rerr := r.Err(); rerr != nil {
				return fmt.Errorf("rsm: replica %d wedged after %d ticks: %w", r.ID(), round, rerr)
			}
		}
	}
	return fmt.Errorf("rsm: %d of %d replicas wedged after %d ticks of the static schedule", stuck, len(replicas), round)
}

// RunTCP drives a full replica set over a loopback TCP mesh — the same
// lockstep pipeline as RunSim, with every frame crossing a real socket.
// Multi-host deployments run one cmd/logserver process per replica
// instead. A divergent gear schedule fails fast with the transport's
// frame instance/round mismatch error.
func RunTCP(replicas []*Replica, opts ...transport.Option) (*sim.Stats, error) {
	procs, err := muxes(replicas)
	if err != nil {
		finishRun(replicas, err)
		return nil, err
	}
	cluster, err := transport.NewCluster(procs, opts...)
	if err != nil {
		finishRun(replicas, err)
		return nil, err
	}
	defer cluster.Close()
	stats, err := cluster.RunMux()
	finishRun(replicas, err)
	return stats, err
}
