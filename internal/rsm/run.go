package rsm

import (
	"errors"
	"fmt"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

// muxes validates the replica set and returns their schedules as muxes
// 0..n-1. Beyond ids, it checks that every replica was built against the
// same lockstep schedule (N, Slots, Window, BatchSize, and — for
// statically configured logs — every slot's round count): mismatched
// configurations would not fail fast on their own, they would silently
// desynchronize the pipeline. Gear-scheduled logs resolve round counts at
// runtime, so only the shape is checked here; a divergent GearProtocol is
// caught by the fabric runtime instead.
func muxes(replicas []*Replica) ([]*sim.Mux, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("rsm: no replicas")
	}
	correct := 0
	for _, r := range replicas {
		if r != nil && !r.faultInjected() {
			correct++
		}
	}
	// An all-fault-injected set has no replica whose errors or schedule
	// the drive loop trusts: a wedge could spin forever with nothing to
	// report. It is also meaningless — there is no correct log to read.
	if correct == 0 {
		return nil, fmt.Errorf("rsm: no correct replicas: every replica is fault-injected")
	}
	ms := make([]*sim.Mux, len(replicas))
	var refKey string
	for i, r := range replicas {
		if r == nil {
			return nil, fmt.Errorf("rsm: replica %d is nil", i)
		}
		if r.ID() != i {
			return nil, fmt.Errorf("rsm: replica at index %d reports id %d", i, r.ID())
		}
		if r.cfg.N != len(replicas) {
			return nil, fmt.Errorf("rsm: replica %d is configured for %d replicas, running %d", i, r.cfg.N, len(replicas))
		}
		key := r.scheduleKey()
		if i == 0 {
			refKey = key
		} else if key != refKey {
			return nil, fmt.Errorf("rsm: replica %d schedule (%s) differs from replica 0 (%s): all replicas must share identical Window/Slots/rounds configurations", i, key, refKey)
		}
		ms[i] = r.Mux()
	}
	return ms, nil
}

// Run drives a full replica set over the given fabric until every slot
// has committed — the single drive path: RunSim, RunTCP, and the chaos
// (mem-fabric) runs are all this function with a different substrate.
// The fabric must host every replica (Local() == 0..n-1). Engine errors
// surface promptly: a correct replica whose mux or protocol fails stops
// the run with that error; a fault-injected replica's failure merely
// mutes it (its errors are shadow-state artifacts) and the run ends with
// the wedge attributed to it. Divergent gear schedules surface as a
// schedule-divergence error. Whatever the outcome, every replica is
// sealed afterwards (Committed closed, the error retrievable via Err) —
// identical abort semantics on every fabric — and the fabric is closed.
func Run(f fabric.Fabric, replicas []*Replica, parallel bool) (*sim.Stats, error) {
	ms, err := muxes(replicas)
	if err != nil {
		finishRun(replicas, err)
		_ = f.Close()
		return nil, err
	}
	stats, err := run(f, ms, replicas, parallel)
	finishRun(replicas, err)
	_ = f.Close()
	return stats, err
}

// RunSim drives the replica set over the in-process fabric. The caller
// still checks each correct replica's Err and Entries afterwards.
func RunSim(replicas []*Replica, parallel bool) (*sim.Stats, error) {
	f, err := fabric.NewSim(len(replicas))
	if err != nil {
		finishRun(replicas, err)
		return nil, err
	}
	return Run(f, replicas, parallel)
}

// RunTCP drives the replica set over a loopback TCP mesh — the same
// lockstep pipeline as RunSim, with every frame crossing a real socket.
// Multi-host deployments run one cmd/logserver process per replica
// instead (transport.JoinMesh + fabric.Run).
func RunTCP(replicas []*Replica, opts ...transport.Option) (*sim.Stats, error) {
	mesh, err := transport.NewMesh(len(replicas), opts...)
	if err != nil {
		finishRun(replicas, err)
		return nil, err
	}
	return Run(mesh, replicas, false)
}

// finishRun seals every replica after a drive loop ends — including runs
// rejected before their first tick: on failure it records the run error
// and closes the Committed channels, so consumers ranging over them
// unblock (the leak this fixes: an aborted run used to leave every
// consumer hanging forever); on success it closes any channel a normal
// completion did not — a fault-injected replica whose shadow state
// diverged from the agreed log never commits its final slot, but its run
// is over all the same.
func finishRun(replicas []*Replica, err error) {
	for _, r := range replicas {
		if r != nil {
			r.Abort(err)
		}
	}
}

func run(f fabric.Fabric, ms []*sim.Mux, replicas []*Replica, parallel bool) (*sim.Stats, error) {
	if len(f.Local()) != len(replicas) {
		return nil, fmt.Errorf("rsm: fabric hosts %d nodes for %d replicas", len(f.Local()), len(replicas))
	}
	// Fault-injected replicas run shadow state; their mux errors are not
	// engine failures — the runtime mutes them instead of tearing the
	// correct replicas' run down, and the wedge is reported below.
	advisory := make([]bool, len(replicas))
	for i, r := range replicas {
		advisory[i] = r.faultInjected()
	}
	geared := replicas[0].cfg.GearProtocol != nil
	lastTick := 0
	hook := func(tick int) error {
		lastTick = tick
		done := 0
		for _, r := range replicas {
			if !r.faultInjected() {
				if rerr := r.Err(); rerr != nil {
					return rerr
				}
			}
			if r.Mux().Done() {
				done++
			}
		}
		// Under the lockstep contract every replica finishes on the same
		// tick; a partial finish is a divergent gear schedule — or, on a
		// static schedule, a wedged (muted fault-injected) replica.
		if done > 0 && done < len(replicas) {
			if geared {
				return divergenceErr(tick, done, len(replicas), nil)
			}
			return wedgeErr(replicas, tick)
		}
		return nil
	}
	opts := []fabric.Option{
		fabric.WithTickHook(hook),
		fabric.WithAdvisoryErrors(advisory),
		// A statically configured log's schedule length is known up front —
		// bound the run by it so a wedged replica cannot spin the loop past
		// the schedule. Gear-scheduled logs report 0 (unknown) and run until
		// every mux completes.
		fabric.WithMaxTicks(replicas[0].TotalTicks()),
	}
	if parallel {
		opts = append(opts, fabric.WithParallel())
	}
	if tr := replicas[0].cfg.Tracer; tr != nil {
		opts = append(opts, fabric.WithTracer(tr))
	}
	stats, err := fabric.Run(f, ms, opts...)
	if err != nil {
		// Translate the runtime's generic classifications into this
		// package's diagnoses: divergence means an impure gear policy,
		// and a fabric that cannot mute a wedged replica (the TCP mesh)
		// reports the wedge the in-process fabrics report directly.
		switch {
		case errors.Is(err, fabric.ErrDiverged) && geared:
			done := 0
			for _, r := range replicas {
				if r.Mux().Done() {
					done++
				}
			}
			return nil, divergenceErr(lastTick, done, len(replicas), err)
		case errors.Is(err, fabric.ErrWedged):
			return nil, wedgeErr(replicas, lastTick)
		}
		return nil, err
	}
	// A bounded run that exhausted its schedule without every replica
	// finishing wedged without diverging (e.g. every replica stalled the
	// same way); report it rather than returning a short log.
	for _, r := range replicas {
		if !r.Mux().Done() {
			return nil, wedgeErr(replicas, stats.Rounds)
		}
	}
	return stats, nil
}

// divergenceErr is the gear-policy diagnosis of a schedule divergence.
func divergenceErr(tick, done, total int, cause error) error {
	msg := fmt.Sprintf("rsm: schedule divergence after %d ticks: %d of %d replicas finished early (gear policies must be identical pure functions of the committed prefix)", tick, done, total)
	if cause != nil {
		return fmt.Errorf("%s: %w", msg, cause)
	}
	return errors.New(msg)
}

// wedgeErr describes replicas stuck short of their schedule, preferring
// a stuck replica's own error (a fault-injected replica's failed slot
// factory, say) over the generic description.
func wedgeErr(replicas []*Replica, round int) error {
	stuck := 0
	for _, r := range replicas {
		if !r.Mux().Done() {
			stuck++
		}
	}
	for _, r := range replicas {
		if !r.Mux().Done() {
			if rerr := r.Err(); rerr != nil {
				return fmt.Errorf("rsm: replica %d wedged after %d ticks: %w", r.ID(), round, rerr)
			}
		}
	}
	return fmt.Errorf("rsm: %d of %d replicas wedged after %d ticks of the static schedule", stuck, len(replicas), round)
}
