package core

import (
	"testing"

	"shiftgears/internal/adversary"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

type runResult struct {
	replicas []*Replica
	logs     []*trace.Log
	stats    *sim.Stats
	faulty   map[int]bool
}

// correct returns the correct non-source replicas (the interesting ones:
// the source halts at round 1).
func (rr runResult) correct(plan *Plan) []*Replica {
	var out []*Replica
	for id, rep := range rr.replicas {
		if !rr.faulty[id] && id != plan.Source {
			out = append(out, rep)
		}
	}
	return out
}

// globalDetections intersects the correct replicas' fault lists.
func (rr runResult) globalDetections(plan *Plan) map[int]bool {
	out := map[int]bool{}
	correct := rr.correct(plan)
	if len(correct) == 0 {
		return out
	}
	for _, p := range correct[0].Faults().Members() {
		out[p] = true
	}
	for _, rep := range correct[1:] {
		for p := range out {
			if !rep.Faults().Contains(p) {
				delete(out, p)
			}
		}
	}
	return out
}

func runPlan(t *testing.T, plan *Plan, val eigtree.Value, faultyIDs []int, strat string, seed int64, hook func(int)) runResult {
	t.Helper()
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	faulty := map[int]bool{}
	for _, f := range faultyIDs {
		faulty[f] = true
	}
	var st adversary.Strategy
	if len(faultyIDs) > 0 {
		st, err = adversary.New(strat, plan.TotalRounds)
		if err != nil {
			t.Fatal(err)
		}
	}
	rr := runResult{faulty: faulty}
	procs := make([]sim.Processor, plan.N)
	for id := 0; id < plan.N; id++ {
		log := trace.NewLog(id)
		rep, err := NewReplica(env, id, val, log)
		if err != nil {
			t.Fatal(err)
		}
		rr.replicas = append(rr.replicas, rep)
		rr.logs = append(rr.logs, log)
		if faulty[id] {
			procs[id] = adversary.NewProcessor(rep, st, seed, plan.N)
		} else {
			procs[id] = rep
		}
	}
	var opts []sim.Option
	if hook != nil {
		opts = append(opts, sim.WithRoundHook(hook))
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rr.stats, err = nw.Run(plan.TotalRounds)
	if err != nil {
		t.Fatal(err)
	}
	for id, rep := range rr.replicas {
		if !faulty[id] {
			if err := rep.Err(); err != nil {
				t.Fatalf("replica %d internal error: %v", id, err)
			}
		}
	}
	return rr
}

func checkAgreementValidity(t *testing.T, plan *Plan, rr runResult, sourceVal eigtree.Value) eigtree.Value {
	t.Helper()
	var common eigtree.Value
	first := true
	for id, rep := range rr.replicas {
		if rr.faulty[id] || id == plan.Source {
			continue
		}
		v, ok := rep.Decided()
		if !ok {
			t.Fatalf("correct replica %d did not decide", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			t.Fatalf("disagreement: replica %d decided %d, others %d", id, v, common)
		}
	}
	if !rr.faulty[plan.Source] && common != sourceVal {
		t.Fatalf("validity violated: source correct with %d, decision %d", sourceVal, common)
	}
	return common
}

func allPlans(t *testing.T) []*Plan {
	return []*Plan{
		mustPlan(t, Exponential, 7, 2, 0),
		mustPlan(t, AlgorithmB, 13, 3, 2),
		mustPlan(t, AlgorithmA, 13, 4, 3),
		mustPlan(t, AlgorithmC, 18, 3, 0),
		mustPlan(t, Hybrid, 13, 4, 3),
	}
}

func TestFaultFreeRunsDecideSourceValue(t *testing.T) {
	for _, plan := range allPlans(t) {
		rr := runPlan(t, plan, 7, nil, "", 0, nil)
		if got := checkAgreementValidity(t, plan, rr, 7); got != 7 {
			t.Errorf("%v: decided %d, want 7", plan.Algorithm, got)
		}
		if rr.stats.Rounds != plan.TotalRounds {
			t.Errorf("%v: ran %d rounds, plan says %d", plan.Algorithm, rr.stats.Rounds, plan.TotalRounds)
		}
		// The source itself decides its own value at round 1.
		if v, ok := rr.replicas[plan.Source].Decided(); !ok || v != 7 {
			t.Errorf("%v: source decision = %d, %v", plan.Algorithm, v, ok)
		}
	}
}

func TestMessageSizesWithinPaperBound(t *testing.T) {
	for _, plan := range allPlans(t) {
		rr := runPlan(t, plan, 1, []int{1, 2}, "garbage", 3, nil)
		bound := plan.MessageBoundNodes()
		// Correct processors never exceed the bound. (Garbage adversaries
		// may send up to ~2× the honest length; measure per-round honest
		// maximum instead via a fault-free run.)
		_ = rr
		clean := runPlan(t, plan, 1, nil, "", 0, nil)
		if clean.stats.MaxPayload > bound {
			t.Errorf("%v: max payload %d exceeds paper bound %d", plan.Algorithm, clean.stats.MaxPayload, bound)
		}
	}
}

func TestNoFalseAccusations(t *testing.T) {
	// "no correct processor p ever puts the name of a correct processor
	// into L_p" (Section 3) — across every strategy and algorithm.
	for _, plan := range allPlans(t) {
		for _, strat := range adversary.Names() {
			faulty := make([]int, 0, plan.T)
			for i := 0; len(faulty) < plan.T; i++ {
				faulty = append(faulty, 2*i) // 0, 2, 4, ... (includes the source)
			}
			rr := runPlan(t, plan, 1, faulty, strat, 11, nil)
			for _, rep := range rr.correct(plan) {
				for _, accused := range rep.Faults().Members() {
					if !rr.faulty[accused] {
						t.Fatalf("%v/%s: correct replica %d accused correct processor %d (L=%v)",
							plan.Algorithm, strat, rep.ID(), accused, rep.Faults().Members())
					}
				}
			}
			checkAgreementValidity(t, plan, rr, 1)
		}
	}
}

func TestPersistenceOfUnanimousPreference(t *testing.T) {
	// Persistence Lemma (Lemma 3 / Lemma 6): a consistently lying faulty
	// source (the "flip" strategy sends the same flipped value to every
	// processor) makes all correct processors prefer v⊕1 after round 1;
	// that unanimity must persist to the decision, whatever the later
	// rounds bring.
	for _, plan := range allPlans(t) {
		faulty := []int{plan.Source}
		rr := runPlan(t, plan, 6, faulty, "flip", 0, nil)
		want := eigtree.Value(6 ^ 1)
		got := checkAgreementValidity(t, plan, rr, 6)
		if got != want {
			t.Errorf("%v: decision %d, want persistent value %d", plan.Algorithm, got, want)
		}
	}
}

func TestLateFaultsCannotDestroyPersistence(t *testing.T) {
	// Sleeper faults behave correctly until two-thirds through the run; by
	// then a correct source's value is persistent and the decision must be
	// the source's value (Persistence + Strong Persistence Lemmas).
	for _, plan := range allPlans(t) {
		faulty := make([]int, 0, plan.T)
		for i := 1; len(faulty) < plan.T; i++ {
			faulty = append(faulty, i)
		}
		rr := runPlan(t, plan, 3, faulty, "sleeper", 5, nil)
		if got := checkAgreementValidity(t, plan, rr, 3); got != 3 {
			t.Errorf("%v: decision %d, want 3", plan.Algorithm, got)
		}
	}
}

func TestSplitBrainSourceGloballyDetectedInRound2(t *testing.T) {
	// Algorithm C's proof (Proposition 4) hinges on the source being
	// discovered in round 2 when it equivocates; a half/half split source
	// leaves no majority at the root.
	plan := mustPlan(t, AlgorithmC, 18, 3, 0)
	rr := runPlan(t, plan, 1, []int{plan.Source}, "splitbrain", 0, nil)
	for _, rep := range rr.correct(plan) {
		round, ok := rep.Faults().DiscoveryRound(plan.Source)
		if !ok || round != 2 {
			t.Fatalf("replica %d: source discovery round = %d, %v; want round 2", rep.ID(), round, ok)
		}
	}
	checkAgreementValidity(t, plan, rr, 1)
}

func TestBlockProgressAccounting(t *testing.T) {
	// Propositions 2 and 3: every block that ends without a persistent
	// value globally detects at least b−1 (Algorithm B) or b−2 (Algorithm
	// A) new faults besides the source. Verified via round-boundary
	// snapshots under a split-brain adversary with a faulty source.
	cases := []struct {
		plan     *Plan
		minNew   int
		strategy string
	}{
		{mustPlan(t, AlgorithmB, 17, 4, 3), 2, "splitbrain"},
		{mustPlan(t, AlgorithmB, 21, 5, 3), 2, "collude"},
		{mustPlan(t, AlgorithmA, 13, 4, 3), 1, "splitbrain"},
		{mustPlan(t, AlgorithmA, 16, 5, 4), 2, "collude"},
	}
	for _, tc := range cases {
		plan := tc.plan
		faulty := []int{plan.Source}
		for i := 1; len(faulty) < plan.T; i++ {
			faulty = append(faulty, 2*i)
		}

		// Segment boundaries (rounds after which a shift happened).
		boundaries := map[int]bool{}
		r := 1
		for _, seg := range plan.Segments {
			r += seg.Rounds
			boundaries[r] = true
		}

		var rr runResult
		type snapshot struct {
			unanimous bool
			global    int // globally detected non-source faults
		}
		var snaps []snapshot
		hook := func(round int) {
			if !boundaries[round] {
				return
			}
			correct := rr.correct(plan)
			prefs := map[eigtree.Value]bool{}
			for _, rep := range correct {
				prefs[rep.Preferred()] = true
			}
			global := rr.globalDetections(plan)
			delete(global, plan.Source)
			snaps = append(snaps, snapshot{unanimous: len(prefs) == 1, global: len(global)})
		}

		env, err := NewEnv(plan)
		if err != nil {
			t.Fatal(err)
		}
		st, err := adversary.New(tc.strategy, plan.TotalRounds)
		if err != nil {
			t.Fatal(err)
		}
		rr.faulty = map[int]bool{}
		for _, f := range faulty {
			rr.faulty[f] = true
		}
		procs := make([]sim.Processor, plan.N)
		for id := 0; id < plan.N; id++ {
			rep, err := NewReplica(env, id, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			rr.replicas = append(rr.replicas, rep)
			if rr.faulty[id] {
				procs[id] = adversary.NewProcessor(rep, st, 7, plan.N)
			} else {
				procs[id] = rep
			}
		}
		nw, err := sim.NewNetwork(procs, sim.WithRoundHook(hook))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(plan.TotalRounds); err != nil {
			t.Fatal(err)
		}

		prevGlobal := 0
		for i, s := range snaps {
			isFullBlock := plan.Segments[i].Rounds == plan.B
			if !s.unanimous && isFullBlock {
				if s.global-prevGlobal < tc.minNew {
					t.Errorf("%v(b=%d) %s: block %d ended without persistence but detected only %d new faults (want ≥ %d)",
						plan.Algorithm, plan.B, tc.strategy, i, s.global-prevGlobal, tc.minNew)
				}
			}
			prevGlobal = s.global
		}
		checkAgreementValidity(t, plan, rr, 1)
	}
}

func TestHybridPhaseTransitions(t *testing.T) {
	// The hybrid enters its Algorithm C phase exactly at round KAB+KBC, on
	// every correct replica (Fig. 3's schedule).
	plan := mustPlan(t, Hybrid, 16, 5, 3)
	rr := runPlan(t, plan, 1, []int{0, 2, 4, 6, 8}, "splitbrain", 1, nil)
	want := plan.Hybrid.KAB + plan.Hybrid.KBC
	for id, log := range rr.logs {
		if rr.faulty[id] || id == plan.Source {
			continue
		}
		found := false
		for _, ev := range log.Events() {
			if ev.Kind == trace.KindPhase {
				if ev.Round != want {
					t.Fatalf("replica %d entered echo phase at round %d, want %d", id, ev.Round, want)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %d never entered the echo phase", id)
		}
	}
	checkAgreementValidity(t, plan, rr, 1)
}

func TestHybridSegGatherEnumIsSharedAcrossPhases(t *testing.T) {
	// The A and B phases of the hybrid use the same (no-repetition) tree
	// shape; only the C phase switches enumerations. One Env must serve
	// both.
	plan := mustPlan(t, Hybrid, 13, 4, 3)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	if env.gather == nil || env.echo == nil {
		t.Fatal("hybrid env must carry both enumerations")
	}
	if env.gather.MaxLevel() != plan.MaxGatherLevel {
		t.Fatalf("gather enum depth %d, want %d", env.gather.MaxLevel(), plan.MaxGatherLevel)
	}
	if env.echo.MaxLevel() != 2 {
		t.Fatalf("echo enum depth %d, want 2", env.echo.MaxLevel())
	}
}

func TestReplicaValidation(t *testing.T) {
	plan := mustPlan(t, Exponential, 7, 2, 0)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplica(env, -1, 0, nil); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := NewReplica(env, 7, 0, nil); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestSourceSendsOnlyRoundOne(t *testing.T) {
	plan := mustPlan(t, AlgorithmB, 13, 3, 2)
	env, _ := NewEnv(plan)
	src, err := NewReplica(env, plan.Source, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := src.PrepareRound(1)
	if out == nil || len(out) != 13 || len(out[3]) != 1 || out[3][0] != 5 {
		t.Fatalf("round 1 outbox = %v", out)
	}
	if v, ok := src.Decided(); !ok || v != 5 {
		t.Fatal("source must decide its own value at round 1")
	}
	for r := 2; r <= plan.TotalRounds; r++ {
		if src.PrepareRound(r) != nil {
			t.Fatalf("source sent in round %d", r)
		}
	}
}

func TestNonSourceSilentInRoundOne(t *testing.T) {
	plan := mustPlan(t, Exponential, 7, 2, 0)
	env, _ := NewEnv(plan)
	rep, err := NewReplica(env, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PrepareRound(1) != nil {
		t.Fatal("non-source replica sent in round 1")
	}
	if rep.Preferred() != eigtree.Default {
		t.Fatal("preferred value before round 1 should be the default")
	}
}

func TestDeterministicRuns(t *testing.T) {
	plan := mustPlan(t, Hybrid, 13, 4, 3)
	run := func() []eigtree.Value {
		rr := runPlan(t, plan, 1, []int{0, 3, 6, 9}, "noise", 42, nil)
		var out []eigtree.Value
		for _, rep := range rr.replicas {
			v, _ := rep.Decided()
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic decision at replica %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCountersPopulated(t *testing.T) {
	plan := mustPlan(t, AlgorithmA, 13, 4, 3)
	rr := runPlan(t, plan, 1, []int{1, 2, 5, 7}, "splitbrain", 0, nil)
	for _, rep := range rr.correct(plan) {
		c := rep.Counters()
		if c.ResolveOps == 0 || c.DiscoveryNodes == 0 || c.PeakTreeNodes == 0 || c.Shifts == 0 {
			t.Fatalf("replica %d counters not populated: %+v", rep.ID(), c)
		}
		// Peak tree: levels 0..b of the no-repetition tree.
		want := 1 + 12 + 12*11 + 12*11*10
		if c.PeakTreeNodes != want {
			t.Fatalf("peak tree nodes = %d, want %d", c.PeakTreeNodes, want)
		}
	}
}

func TestEchoTreeStaysSmall(t *testing.T) {
	// Algorithm C's tree never exceeds three levels: 1 + n + n².
	plan := mustPlan(t, AlgorithmC, 18, 3, 0)
	rr := runPlan(t, plan, 1, []int{1, 2, 3}, "noise", 0, nil)
	for _, rep := range rr.correct(plan) {
		if c := rep.Counters(); c.PeakTreeNodes > 1+18+18*18 {
			t.Fatalf("echo tree grew to %d nodes", c.PeakTreeNodes)
		}
	}
}

func TestDecisionEventLogged(t *testing.T) {
	plan := mustPlan(t, Exponential, 7, 2, 0)
	rr := runPlan(t, plan, 9, nil, "", 0, nil)
	for id, log := range rr.logs {
		if id == plan.Source {
			continue
		}
		events := log.Events()
		last := events[len(events)-1]
		if last.Kind != trace.KindDecision || last.Round != plan.TotalRounds || last.Target != 9 {
			t.Fatalf("replica %d last event = %+v", id, last)
		}
	}
}

func TestOverResilienceFailsGracefully(t *testing.T) {
	// With t+1 two-faced faults the guarantees are forfeit, but replicas
	// must still terminate with *some* decision and no internal error.
	plan := mustPlan(t, Exponential, 7, 2, 0)
	rr := runPlan(t, plan, 1, []int{0, 2, 4}, "splitbrain", 0, nil)
	for id, rep := range rr.replicas {
		if rr.faulty[id] || id == plan.Source {
			continue
		}
		if _, ok := rep.Decided(); !ok {
			t.Fatalf("replica %d did not decide under excess faults", id)
		}
	}
}
