package core

import "testing"

func TestEnvPrewarmStocksPool(t *testing.T) {
	plan := mustPlan(t, Exponential, 7, 2, 0)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Prewarm(5); err != nil {
		t.Fatal(err)
	}
	env.mu.Lock()
	free := len(env.free)
	env.mu.Unlock()
	if free != 5 {
		t.Fatalf("pool holds %d replicas after Prewarm(5), want 5", free)
	}
	// Prewarmed (non-source-shaped) replicas must reset cleanly into any
	// role — the source id included.
	for id := 0; id < 3; id++ {
		r, err := env.GetReplica(id, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.ID() != id {
			t.Fatalf("pooled replica reset to id %d, want %d", r.ID(), id)
		}
	}
	env.mu.Lock()
	free = len(env.free)
	env.mu.Unlock()
	if free != 2 {
		t.Fatalf("pool holds %d after drawing 3 of 5, want 2", free)
	}
}
