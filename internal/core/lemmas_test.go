package core

// Lemma-level tests: these exercise the paper's central lemmas directly on
// protocol executions, complementing the end-to-end agreement tests.

import (
	"testing"

	"shiftgears/internal/adversary"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

// TestCorrectnessLemmaOnWire is Lemma 1 at the system level: in a real
// execution, for every correct processor q, the round-2 tree node s·q is
// common across correct processors with value equal to q's preferred value
// after round 1.
func TestCorrectnessLemmaOnWire(t *testing.T) {
	plan := mustPlan(t, Exponential, 10, 3, 0)
	faulty := []int{2, 5, 8}
	hook := func(round int, rr *runResult) {
		if round != 3 { // after two gathering rounds: levels 0..2 stored
			return
		}
		correct := rr.correct(plan)
		enum := correct[0].tree.Enum()
		for i := 0; i < enum.Size(1); i++ {
			q := enum.LastLabel(1, i)
			if q == 2 || q == 5 || q == 8 {
				continue
			}
			// Resolve the subtree rooted at s·q at every correct processor:
			// all must agree (q is correct).
			var want eigtree.CValue
			for j, rep := range correct {
				res, err := rep.tree.Resolve(eigtree.ResolveMajority, plan.T)
				if err != nil {
					t.Fatal(err)
				}
				if j == 0 {
					want = res.At(1, i)
				} else if res.At(1, i) != want {
					t.Fatalf("node s·%d not common: %v vs %v", q, res.At(1, i), want)
				}
			}
		}
	}
	rr := runLemma(t, plan, faulty, "splitbrain", hook)
	checkAgreementValidity(t, plan, rr, 1)
}

// TestFrontierLemmaDirect is Lemma 2 on a hand-built tree: if every
// root-to-leaf path contains a common node, the root is common. We build
// two processors' trees that differ wildly below a common frontier and
// check resolve agrees.
func TestFrontierLemmaDirect(t *testing.T) {
	enum, err := eigtree.NewEnum(7, 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func(noise eigtree.Value) *eigtree.Tree {
		tr := eigtree.NewTree(enum)
		tr.SetRoot(1)
		if _, err := tr.AddLevel(); err != nil {
			t.Fatal(err)
		}
		// Level 1 is the common frontier: same at both processors.
		lvl1 := tr.LevelValues(1)
		for i := range lvl1 {
			lvl1[i] = eigtree.Value(i % 2)
		}
		if _, err := tr.AddLevel(); err != nil {
			t.Fatal(err)
		}
		// Level 2 backs up the frontier values unanimously (so level-1
		// stays common under resolve) — a node's children echo its value —
		// except one subtree where the processors differ in a minority of
		// children (noise), which must not change any converted value.
		cc := enum.ChildCount(1)
		lvl2 := tr.LevelValues(2)
		for i := 0; i < enum.Size(1); i++ {
			for k := 0; k < cc; k++ {
				lvl2[i*cc+k] = lvl1[i]
			}
		}
		lvl2[0] = noise // one dissenting child in the first subtree
		return tr
	}
	trA := build(7)
	trB := build(9)
	resA, err := trA.Resolve(eigtree.ResolveMajority, 2)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := trB.Resolve(eigtree.ResolveMajority, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Root() != resB.Root() {
		t.Fatalf("common frontier did not force a common root: %v vs %v", resA.Root(), resB.Root())
	}
}

// TestCorollary1OnWire checks Corollary 1 of the Hidden Fault Lemma in its
// contrapositive form on live Algorithm B executions: at a block's
// conversion, an internal node whose whole path is faulty either converts
// to a common value at every correct processor, or its processor is in
// EVERY correct processor's list ("if an internal node is not common then
// its corresponding processor is globally detected").
func TestCorollary1OnWire(t *testing.T) {
	plan := mustPlan(t, AlgorithmB, 17, 4, 3)
	faulty := []int{0, 4, 8, 12} // the source is faulty, so all-faulty paths exist
	isFaulty := map[int]bool{0: true, 4: true, 8: true, 12: true}

	boundaries := map[int]bool{}
	r := 1
	for _, seg := range plan.Segments {
		r += seg.Rounds
		boundaries[r] = true
	}

	// The shift at a boundary round collapses the tree before the hook can
	// see it, so the check runs one round earlier: the tree then holds all
	// of the block's levels but the last, and conversion applied there
	// corresponds to a (b−1)-round block, for which the corollary equally
	// holds (it is proved per-node from the Hidden Fault Lemma).
	hook := func(round int, rr *runResult) {
		if !boundaries[round+1] {
			return
		}
		correct := rr.correct(plan)
		if correct[0].tree.Levels() < 2 {
			return
		}
		enum := correct[0].tree.Enum()
		type conv struct {
			rep *Replica
			res *eigtree.Resolution
		}
		var convs []conv
		for _, rep := range correct {
			res, err := rep.tree.Resolve(eigtree.ResolveMajority, plan.T)
			if err != nil {
				t.Fatal(err)
			}
			convs = append(convs, conv{rep, res})
		}
		levels := correct[0].tree.Levels()
		for h := 1; h < levels-1; h++ { // internal nodes below the root
			for idx := 0; idx < enum.Size(h); idx++ {
				seq := enum.Level(h)[idx]
				allFaulty := true
				for _, label := range seq.Labels() {
					if !isFaulty[label] {
						allFaulty = false
						break
					}
				}
				if !allFaulty {
					continue
				}
				common := true
				for _, c := range convs[1:] {
					if c.res.At(h, idx) != convs[0].res.At(h, idx) {
						common = false
						break
					}
				}
				if common {
					continue
				}
				r := enum.LastLabel(h, idx)
				for _, c := range convs {
					if !c.rep.list.Contains(r) {
						t.Fatalf("round %d: node %v not common, yet p%d has not discovered %d (L=%v)",
							round, seq.Labels(), c.rep.ID(), r, c.rep.list.Members())
					}
				}
			}
		}
	}
	rr := runLemma(t, plan, faulty, "splitbrain", hook)
	checkAgreementValidity(t, plan, rr, 1)
}

// TestStrongPersistenceAcrossShift is the Strong Persistence Lemma: a value
// preferred by a majority of ALL processors (not n−t) survives a resolve
// shift. We check it at the hybrid's A→B boundary under adversarial load.
func TestStrongPersistenceAcrossShift(t *testing.T) {
	plan := mustPlan(t, Hybrid, 13, 4, 3)
	faulty := []int{1, 4, 7, 10} // source correct → all correct prefer 1 forever
	boundary := plan.Hybrid.KAB
	hook := func(round int, rr *runResult) {
		if round != boundary {
			return
		}
		for _, rep := range rr.correct(plan) {
			if rep.Preferred() != 1 {
				t.Fatalf("preferred value %d at the A→B shift, want the persistent 1", rep.Preferred())
			}
		}
	}
	rr := runLemma(t, plan, faulty, "sleeper", hook)
	if got := checkAgreementValidity(t, plan, rr, 1); got != 1 {
		t.Fatalf("decision %d", got)
	}
}

// runLemma is runPlan with a round hook that receives the live run state
// (replicas are registered before the network starts).
func runLemma(t *testing.T, plan *Plan, faulty []int, strat string, hook func(round int, rr *runResult)) runResult {
	t.Helper()
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	var st adversary.Strategy
	if len(faulty) > 0 {
		st, err = adversary.New(strat, plan.TotalRounds)
		if err != nil {
			t.Fatal(err)
		}
	}
	rr := runResult{faulty: map[int]bool{}}
	for _, f := range faulty {
		rr.faulty[f] = true
	}
	procs := make([]sim.Processor, plan.N)
	for id := 0; id < plan.N; id++ {
		rep, err := NewReplica(env, id, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr.replicas = append(rr.replicas, rep)
		if rr.faulty[id] {
			procs[id] = adversary.NewProcessor(rep, st, 7, plan.N)
		} else {
			procs[id] = rep
		}
	}
	wrapped := func(round int) { hook(round, &rr) }
	if hook == nil {
		wrapped = nil
	}
	var opts []sim.Option
	if wrapped != nil {
		opts = append(opts, sim.WithRoundHook(wrapped))
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rr.stats, err = nw.Run(plan.TotalRounds); err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestAblationOptionsChangeBehavior sanity-checks the E10 hooks: with
// discovery disabled no replica ever populates its list; with masking
// disabled the list still grows.
func TestAblationOptionsChangeBehavior(t *testing.T) {
	plan := mustPlan(t, AlgorithmB, 17, 4, 3)
	run := func(opts Options) []*Replica {
		env, err := NewEnv(plan)
		if err != nil {
			t.Fatal(err)
		}
		env.Opts = opts
		st, err := adversary.New("splitbrain", plan.TotalRounds)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]sim.Processor, plan.N)
		var reps []*Replica
		for id := 0; id < plan.N; id++ {
			rep, err := NewReplica(env, id, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, rep)
			if id == 0 || id == 4 || id == 8 || id == 12 {
				procs[id] = adversary.NewProcessor(rep, st, 3, plan.N)
			} else {
				procs[id] = rep
			}
		}
		nw, err := sim.NewNetwork(procs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(plan.TotalRounds); err != nil {
			t.Fatal(err)
		}
		return reps
	}

	noDisc := run(Options{DisableDiscovery: true})
	for _, rep := range noDisc {
		if rep.Faults().Len() != 0 {
			t.Fatal("discovery disabled but list non-empty")
		}
	}
	noMask := run(Options{DisableMasking: true})
	grew := false
	for _, rep := range noMask {
		if rep.Faults().Len() > 0 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("masking-only ablation should still discover faults")
	}
}
