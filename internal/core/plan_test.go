package core

import (
	"testing"

	"shiftgears/internal/eigtree"
)

func mustPlan(t *testing.T, alg Algorithm, n, tt, b int) *Plan {
	t.Helper()
	p, err := NewPlan(alg, n, tt, b, 0)
	if err != nil {
		t.Fatalf("NewPlan(%v, %d, %d, %d): %v", alg, n, tt, b, err)
	}
	return p
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Exponential: "Exponential", AlgorithmA: "A", AlgorithmB: "B",
		AlgorithmC: "C", Hybrid: "Hybrid",
	}
	for alg, want := range names {
		if alg.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(alg), alg.String(), want)
		}
	}
}

func TestMaxResilience(t *testing.T) {
	cases := []struct {
		alg  Algorithm
		n    int
		want int
	}{
		{Exponential, 4, 1}, {Exponential, 13, 4}, {AlgorithmA, 10, 3},
		{Hybrid, 16, 5},
		{AlgorithmB, 13, 3}, {AlgorithmB, 17, 4},
		{AlgorithmC, 8, 1}, // √4 = 2 but n ≤ 4t rules out 2
		{AlgorithmC, 9, 2}, // √4.5 → 2, 9 > 8
		{AlgorithmC, 18, 3}, {AlgorithmC, 32, 4}, {AlgorithmC, 50, 5},
	}
	for _, tc := range cases {
		if got := MaxResilience(tc.alg, tc.n); got != tc.want {
			t.Errorf("MaxResilience(%v, %d) = %d, want %d", tc.alg, tc.n, got, tc.want)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []struct {
		name    string
		alg     Algorithm
		n, t, b int
	}{
		{"n too small", Exponential, 3, 1, 0},
		{"t zero", Exponential, 4, 0, 0},
		{"exp resilience", Exponential, 9, 3, 0},
		{"A resilience", AlgorithmA, 12, 4, 3},
		{"A b too small", AlgorithmA, 13, 4, 2},
		{"A b too large", AlgorithmA, 13, 4, 5},
		{"B resilience", AlgorithmB, 12, 3, 2},
		{"B b too small", AlgorithmB, 13, 3, 1},
		{"B b too large", AlgorithmB, 13, 3, 4},
		{"C resilience", AlgorithmC, 17, 3, 0},
		{"C n ≤ 4t", AlgorithmC, 8, 2, 0},
		{"hybrid resilience", Hybrid, 12, 4, 3},
		{"hybrid t < 3", Hybrid, 7, 2, 3},
		{"hybrid b < 3", Hybrid, 13, 4, 2},
		{"hybrid b > t", Hybrid, 13, 4, 5},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPlan(tc.alg, tc.n, tc.t, tc.b, 0); err == nil {
				t.Fatalf("NewPlan(%v, %d, %d, %d) succeeded, want error", tc.alg, tc.n, tc.t, tc.b)
			}
		})
	}
	if _, err := NewPlan(Exponential, 7, 2, 0, 7); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := NewPlan(Algorithm(99), 7, 2, 0, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestExponentialPlan(t *testing.T) {
	p := mustPlan(t, Exponential, 13, 4, 0)
	if p.TotalRounds != 5 || p.PaperRoundBound() != 5 {
		t.Fatalf("rounds = %d, bound = %d, want 5", p.TotalRounds, p.PaperRoundBound())
	}
	if len(p.Segments) != 1 || p.Segments[0].Rounds != 4 || p.Segments[0].Conv != eigtree.ResolveMajority {
		t.Fatalf("segments = %+v", p.Segments)
	}
	if p.MaxGatherLevel != 4 {
		t.Fatalf("MaxGatherLevel = %d", p.MaxGatherLevel)
	}
	// Message bound: leaves of the 4-round tree = (n-1)(n-2)(n-3).
	if got, want := p.MessageBoundNodes(), 12*11*10; got != want {
		t.Fatalf("MessageBoundNodes = %d, want %d", got, want)
	}
}

func TestAlgorithmBPlanSchedule(t *testing.T) {
	// Theorem 3: rounds = t+1+⌊(t−1)/(b−1)⌋, one fewer when (b−1)|(t−1).
	cases := []struct {
		t, b       int
		wantRounds int
		wantSegs   []int
	}{
		{5, 2, 9, []int{2, 2, 2, 2}}, // x=4, y=0: 1+8 rounds ((b−1)|(t−1))
		{5, 3, 7, []int{3, 3}},       // x=2, y=0: 1+6 rounds
		{5, 4, 8, []int{4, 2}},       // x=1, y=1: 1+4+2 rounds
		{5, 5, 6, []int{5}},          // b=t: Exponential
		{4, 2, 7, []int{2, 2, 2}},    // x=3, y=0: 1+6 rounds
		{4, 3, 6, []int{3, 2}},       // x=1, y=1: 1+3+2 rounds
	}
	// Note: wantRounds above is the paper's *worst-case formula*; the plan
	// itself may use one fewer round when (b−1) divides (t−1). Check both.
	for _, tc := range cases {
		n := 4*tc.t + 1
		p := mustPlan(t, AlgorithmB, n, tc.t, tc.b)
		if len(p.Segments) != len(tc.wantSegs) {
			t.Fatalf("t=%d b=%d: segments %+v, want lengths %v", tc.t, tc.b, p.Segments, tc.wantSegs)
		}
		total := 1
		for i, s := range p.Segments {
			if s.Rounds != tc.wantSegs[i] {
				t.Fatalf("t=%d b=%d: segment %d has %d rounds, want %d", tc.t, tc.b, i, s.Rounds, tc.wantSegs[i])
			}
			if s.Conv != eigtree.ResolveMajority || s.Kind != SegGather {
				t.Fatalf("t=%d b=%d: segment %d = %+v", tc.t, tc.b, i, s)
			}
			total += s.Rounds
		}
		if p.TotalRounds != total {
			t.Fatalf("t=%d b=%d: TotalRounds %d ≠ sum %d", tc.t, tc.b, p.TotalRounds, total)
		}
		if p.TotalRounds > p.PaperRoundBound() {
			t.Fatalf("t=%d b=%d: schedule %d exceeds Theorem 3 bound %d", tc.t, tc.b, p.TotalRounds, p.PaperRoundBound())
		}
		if tc.b == tc.t && p.TotalRounds != tc.t+1 {
			t.Fatalf("b=t must collapse to the Exponential Algorithm's %d rounds", tc.t+1)
		}
		// The exact formula: t+1+⌊(t−1)/(b−1)⌋ minus 1 when (b−1)|(t−1).
		want := tc.t + 1 + (tc.t-1)/(tc.b-1)
		if tc.b < tc.t && (tc.t-1)%(tc.b-1) == 0 {
			want--
		}
		if tc.b == tc.t {
			want = tc.t + 1
		}
		if p.TotalRounds != want {
			t.Fatalf("t=%d b=%d: rounds = %d, want %d", tc.t, tc.b, p.TotalRounds, want)
		}
	}
}

func TestAlgorithmAPlanSchedule(t *testing.T) {
	// Theorem 2 / Section 4.2: round 1, ⌊(t−1)/(b−2)⌋ blocks of b rounds,
	// and a final block of y+2 rounds when y = (t−1) mod (b−2) > 0.
	cases := []struct {
		t, b     int
		wantSegs []int
	}{
		{4, 3, []int{3, 3, 3}},    // x=3, y=0
		{5, 3, []int{3, 3, 3, 3}}, // x=4, y=0
		{5, 4, []int{4, 4}},       // x=2, y=0
		{6, 4, []int{4, 4, 3}},    // x=2, y=1 → final 3
		{6, 5, []int{5, 4}},       // x=1, y=2 → final 4
		{5, 5, []int{5}},          // b=t
	}
	for _, tc := range cases {
		n := 3*tc.t + 1
		p := mustPlan(t, AlgorithmA, n, tc.t, tc.b)
		if len(p.Segments) != len(tc.wantSegs) {
			t.Fatalf("t=%d b=%d: %d segments, want %d", tc.t, tc.b, len(p.Segments), len(tc.wantSegs))
		}
		for i, s := range p.Segments {
			if s.Rounds != tc.wantSegs[i] || s.Conv != eigtree.ResolveSupport {
				t.Fatalf("t=%d b=%d: segment %d = %+v, want %d rounds of resolve'", tc.t, tc.b, i, s, tc.wantSegs[i])
			}
		}
		if p.TotalRounds > p.PaperRoundBound() {
			t.Fatalf("t=%d b=%d: %d rounds exceed Theorem 2's %d", tc.t, tc.b, p.TotalRounds, p.PaperRoundBound())
		}
	}
}

func TestAlgorithmCPlan(t *testing.T) {
	p := mustPlan(t, AlgorithmC, 18, 3, 0)
	if p.TotalRounds != 4 || p.PaperRoundBound() != 4 {
		t.Fatalf("C rounds = %d/%d, want t+1 = 4", p.TotalRounds, p.PaperRoundBound())
	}
	if len(p.Segments) != 1 || p.Segments[0].Kind != SegEcho || p.Segments[0].Rounds != 3 {
		t.Fatalf("segments = %+v", p.Segments)
	}
	if p.MessageBoundNodes() != 18 {
		t.Fatalf("C message bound = %d, want n", p.MessageBoundNodes())
	}
	if !p.NeedsEcho() || p.NeedsGather() {
		t.Fatal("C needs only the echo enumeration")
	}
}

func TestHybridPlanStructure(t *testing.T) {
	p := mustPlan(t, Hybrid, 13, 4, 3)
	hp := p.Hybrid
	if hp == nil {
		t.Fatal("hybrid plan missing params")
	}
	// Segments: A-phase gather (resolve'), B-phase gather (resolve), echo.
	var aRounds, bRounds, cRounds int
	phase := 0
	for _, s := range p.Segments {
		switch {
		case s.Kind == SegGather && s.Conv == eigtree.ResolveSupport:
			if phase != 0 {
				t.Fatal("A segments after B/C phase")
			}
			aRounds += s.Rounds
		case s.Kind == SegGather && s.Conv == eigtree.ResolveMajority:
			if phase > 1 {
				t.Fatal("B segments after C phase")
			}
			phase = 1
			bRounds += s.Rounds
		case s.Kind == SegEcho:
			phase = 2
			cRounds += s.Rounds
		}
	}
	if 1+aRounds != hp.KAB {
		t.Errorf("A phase rounds 1+%d ≠ KAB %d", aRounds, hp.KAB)
	}
	if bRounds != hp.KBC {
		t.Errorf("B phase rounds %d ≠ KBC %d", bRounds, hp.KBC)
	}
	if cRounds != hp.CRounds {
		t.Errorf("C phase rounds %d ≠ CRounds %d", cRounds, hp.CRounds)
	}
	if p.TotalRounds != hp.Total || p.PaperRoundBound() != hp.Total {
		t.Errorf("total %d vs params %d", p.TotalRounds, hp.Total)
	}
	if !p.NeedsGather() || !p.NeedsEcho() {
		t.Error("hybrid needs both enumerations")
	}
}

func TestHybridMatchesTheorem1Formula(t *testing.T) {
	// Theorem 1: rounds = t + 2⌊(t_AB−1)/(b−2)⌋ + ⌊t_BC/(b−1)⌋ + 4 when the
	// B phase is non-empty.
	for _, tc := range []struct{ n, t, b int }{
		{13, 4, 3}, {16, 5, 3}, {19, 6, 3}, {22, 7, 3}, {31, 10, 3},
		{16, 5, 4}, {19, 6, 4}, {31, 10, 4}, {31, 10, 5},
	} {
		p := mustPlan(t, Hybrid, tc.n, tc.t, tc.b)
		hp := p.Hybrid
		if hp.TBC >= 1 && hp.TAB >= 1 {
			want := tc.t + 2*((hp.TAB-1)/(tc.b-2)) + hp.TBC/(tc.b-1) + 4
			if p.TotalRounds != want {
				t.Errorf("n=%d t=%d b=%d: rounds %d, Theorem 1 formula %d (params %+v)",
					tc.n, tc.t, tc.b, p.TotalRounds, want, *hp)
			}
		}
	}
}

func TestHybridDominatesAlgorithmA(t *testing.T) {
	// The point of shifting (Section 4.4): the hybrid is faster than
	// Algorithm A at the same resilience, message length, and space.
	for _, tc := range []struct{ n, t, b int }{
		{13, 4, 3}, {16, 5, 3}, {19, 6, 3}, {22, 7, 3}, {25, 8, 3},
		{31, 10, 3}, {16, 5, 4}, {19, 6, 4}, {31, 10, 4},
	} {
		a := mustPlan(t, AlgorithmA, tc.n, tc.t, tc.b)
		h := mustPlan(t, Hybrid, tc.n, tc.t, tc.b)
		if h.TotalRounds > a.TotalRounds {
			t.Errorf("n=%d t=%d b=%d: hybrid %d rounds > A %d rounds",
				tc.n, tc.t, tc.b, h.TotalRounds, a.TotalRounds)
		}
		if h.MessageBoundNodes() > a.MessageBoundNodes() {
			t.Errorf("n=%d t=%d b=%d: hybrid message bound exceeds A's", tc.n, tc.t, tc.b)
		}
	}
}

func TestPlanMessageBoundGrowsAsNPowB(t *testing.T) {
	// For fixed t, the message bound of B(b) is Θ(n^b): the leaf count of a
	// b-level tree, (n-1)(n-2)...(n-b+1)... — verify the closed form.
	p := mustPlan(t, AlgorithmB, 21, 5, 3)
	if got, want := p.MessageBoundNodes(), 20*19; got != want {
		t.Fatalf("message bound = %d, want %d", got, want)
	}
	p4 := mustPlan(t, AlgorithmB, 21, 5, 4)
	if got, want := p4.MessageBoundNodes(), 20*19*18; got != want {
		t.Fatalf("message bound = %d, want %d", got, want)
	}
}

func TestSegmentKindNames(t *testing.T) {
	if kindName(SegGather) != "gathering" || kindName(SegEcho) != "echo (Algorithm C)" {
		t.Fatal("segment kind names changed")
	}
}

func TestIsqrt(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {3, 1}, {4, 2}, {8, 2}, {9, 3}, {100, 10}, {101, 10},
	} {
		if got := isqrt(tc.in); got != tc.want {
			t.Errorf("isqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
