package core

import (
	"fmt"
	"sync"

	"shiftgears/internal/eigtree"
	"shiftgears/internal/faults"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// Counters accumulate the local-computation and space measures the paper's
// theorems bound.
type Counters struct {
	// ResolveOps counts child-value examinations during data conversion
	// (the paper's local computation time unit).
	ResolveOps int
	// DiscoveryNodes and DiscoveryReads count Fault Discovery Rule work.
	DiscoveryNodes int
	DiscoveryReads int
	// PeakTreeNodes is the largest Information Gathering Tree held (local
	// space).
	PeakTreeNodes int
	// Shifts counts shift operator applications.
	Shifts int
}

// Options disable individual mechanisms of the algorithms for the ablation
// experiments (DESIGN.md, E10). The zero value is the paper's algorithm.
// Disabling either mechanism voids the block-progress guarantee that
// Propositions 2 and 3 rest on — which is exactly what the ablation
// demonstrates.
type Options struct {
	// DisableDiscovery skips the Fault Discovery Rule entirely (both the
	// gathering-time and the conversion-time variant), so lists L_p stay
	// empty and nothing is ever masked.
	DisableDiscovery bool
	// DisableMasking keeps the discovery rule (lists grow) but never masks:
	// messages from listed processors are stored verbatim.
	DisableMasking bool
}

// Env holds the immutable, shareable pieces of one protocol configuration:
// the plan and the canonical enumerations. All replicas of a run share one
// Env, so the (potentially large) enumerations are built once.
//
// Opts may be set after NewEnv and before replicas are created; it applies
// to every replica built from this Env.
type Env struct {
	Plan   *Plan
	Opts   Options
	gather *eigtree.Enum
	echo   *eigtree.Enum

	// Replica free list for GetReplica/Release. The instance-per-slot
	// lifecycle of the replicated log builds hundreds of short-lived
	// replicas per run; pooling keeps each one's tree arena, fault list,
	// and codec scratch warm. Synchronized: one Env is shared by every
	// node of a run, and slots start and finish on concurrent drive loops.
	mu   sync.Mutex
	free []*Replica
}

// NewEnv builds the enumerations the plan requires.
func NewEnv(plan *Plan) (*Env, error) {
	env := &Env{Plan: plan}
	if plan.NeedsGather() {
		e, err := eigtree.NewEnum(plan.N, plan.Source, false, plan.MaxGatherLevel)
		if err != nil {
			return nil, fmt.Errorf("core: gather enumeration: %w", err)
		}
		env.gather = e
	}
	if plan.NeedsEcho() {
		e, err := eigtree.NewEnum(plan.N, plan.Source, true, 2)
		if err != nil {
			return nil, fmt.Errorf("core: echo enumeration: %w", err)
		}
		env.echo = e
	}
	return env, nil
}

// Replica executes a Plan for one processor. It implements sim.Processor.
//
// The source follows the paper exactly: it broadcasts its initial value in
// round 1, decides on it, and halts. Every other replica gathers
// information, applies the Fault Discovery and Fault Masking Rules each
// round, shifts at segment boundaries, and decides at the end of the plan.
type Replica struct {
	env     *Env
	id      int
	initial eigtree.Value

	tree *eigtree.Tree
	list *faults.List
	log  *trace.Log

	segIdx   int
	segDone  int
	decided  bool
	decision eigtree.Value
	err      error

	counters Counters

	// Per-round scratch: the broadcast outbox (every destination shares
	// one payload) and the payload buffer it points at, both reused across
	// rounds. Sound under the sim.Processor contract — outbox payloads are
	// consumed or copied within their tick — and under the adversary
	// Strategy contract (strategies never retain or mutate honest
	// payloads in place).
	bcast   [][]byte
	payload []byte
	srcbuf  [1]byte
	cvals   []eigtree.Value // echoRound's converted mid-level scratch
}

var _ sim.Processor = (*Replica)(nil)

// NewReplica creates the replica with the given id. initial is the initial
// value, meaningful only for the source. log may be nil.
func NewReplica(env *Env, id int, initial eigtree.Value, log *trace.Log) (*Replica, error) {
	if id < 0 || id >= env.Plan.N {
		return nil, fmt.Errorf("core: replica id %d out of range [0, %d)", id, env.Plan.N)
	}
	r := &Replica{
		env:     env,
		id:      id,
		initial: initial,
		list:    faults.NewList(env.Plan.N),
		log:     log,
	}
	if id != env.Plan.Source {
		if len(env.Plan.Segments) == 0 {
			return nil, fmt.Errorf("core: plan has no segments")
		}
		r.tree = eigtree.NewTree(r.enumFor(env.Plan.Segments[0].Kind))
	}
	return r, nil
}

// GetReplica returns a replica for the given id, reusing a pooled one when
// available. Pooled replicas keep their tree arena, resolution scratch,
// fault-list storage, and outbox buffers, so in steady state a fresh
// consensus instance costs no allocation at all. Pair with Release.
func (env *Env) GetReplica(id int, initial eigtree.Value, log *trace.Log) (*Replica, error) {
	env.mu.Lock()
	var r *Replica
	if n := len(env.free); n > 0 {
		r = env.free[n-1]
		env.free = env.free[:n-1]
	}
	env.mu.Unlock()
	if r == nil {
		return NewReplica(env, id, initial, log)
	}
	if err := r.reset(id, initial, log); err != nil {
		return nil, err
	}
	return r, nil
}

// Prewarm stocks the replica pool with k ready-to-reset replicas, so a
// run's first window of GetReplica calls hits the pool instead of paying
// pool-warmup allocations mid-run — construction time is the right place
// for that cost, and it is exactly what the alloc benches exclude.
// Prewarmed replicas are built as non-source replicas: the source
// variant carries no tree, so a source-shaped pooled replica would
// re-allocate its arena on first non-source reset, while reset handles
// the other direction for free.
func (env *Env) Prewarm(k int) error {
	id := (env.Plan.Source + 1) % env.Plan.N
	if id == env.Plan.Source { // single-node plan: no non-source shape exists
		return nil
	}
	warmed := make([]*Replica, 0, k)
	for i := 0; i < k; i++ {
		r, err := NewReplica(env, id, 0, nil)
		if err != nil {
			return err
		}
		warmed = append(warmed, r)
	}
	env.mu.Lock()
	env.free = append(env.free, warmed...)
	env.mu.Unlock()
	return nil
}

// Release returns the replica to its Env's pool for reuse by a later
// GetReplica. The caller must not touch the replica afterwards.
func (r *Replica) Release() {
	env := r.env
	env.mu.Lock()
	env.free = append(env.free, r)
	env.mu.Unlock()
}

// reset restores a pooled replica to its just-constructed state for a new
// (id, initial) run, keeping every reusable buffer.
func (r *Replica) reset(id int, initial eigtree.Value, log *trace.Log) error {
	if id < 0 || id >= r.env.Plan.N {
		return fmt.Errorf("core: replica id %d out of range [0, %d)", id, r.env.Plan.N)
	}
	r.id = id
	r.initial = initial
	r.log = log
	r.list.Reset()
	r.segIdx = 0
	r.segDone = 0
	r.decided = false
	r.decision = 0
	r.err = nil
	r.counters = Counters{}
	if id != r.env.Plan.Source {
		if len(r.env.Plan.Segments) == 0 {
			return fmt.Errorf("core: plan has no segments")
		}
		want := r.enumFor(r.env.Plan.Segments[0].Kind)
		// A replica that last ran as the source has no tree; one whose run
		// ended in an echo segment has a tree of the wrong shape. Either
		// way the old arena is useless for the new enumeration.
		if r.tree == nil || r.tree.Enum() != want {
			r.tree = eigtree.NewTree(want)
		} else {
			r.tree.Reset()
		}
	}
	return nil
}

func (r *Replica) enumFor(kind SegmentKind) *eigtree.Enum {
	if kind == SegEcho {
		return r.env.echo
	}
	return r.env.gather
}

// ID implements sim.Processor.
func (r *Replica) ID() int { return r.id }

// Decided returns the decision value once the replica has irreversibly
// decided.
func (r *Replica) Decided() (eigtree.Value, bool) { return r.decision, r.decided }

// Err reports an internal protocol error (a bug, not Byzantine behavior:
// plans guarantee trees fit their enumerations).
func (r *Replica) Err() error { return r.err }

// Preferred returns the current preferred value, tree(s).
func (r *Replica) Preferred() eigtree.Value {
	if r.id == r.env.Plan.Source {
		return r.initial
	}
	return r.tree.Root()
}

// Faults returns the replica's list L_p.
func (r *Replica) Faults() *faults.List { return r.list }

// Counters returns the local computation/space counters.
func (r *Replica) Counters() Counters { return r.counters }

// PrepareRound implements sim.Processor. In round 1 only the source sends
// (its initial value); in every later round each undecided non-source
// replica broadcasts the leaves of its current tree — after a shift the
// tree is a bare root, so the broadcast naturally restarts at one value,
// which is precisely the "execute from round 2" semantics of the paper's
// shift operator.
func (r *Replica) PrepareRound(round int) [][]byte {
	if r.id == r.env.Plan.Source {
		if round != 1 {
			return nil
		}
		r.decide(1, r.initial)
		r.srcbuf[0] = byte(r.initial)
		return r.broadcast(r.srcbuf[:])
	}
	if round == 1 || r.decided || r.err != nil {
		return nil
	}
	r.payload = r.tree.AppendLeafPayload(r.payload[:0])
	return r.broadcast(r.payload)
}

// broadcast fills the replica's reusable outbox with payload for every
// destination (the behavior of a correct processor) — sim.Broadcast
// without the per-round allocation. The outbox and payload are valid for
// one tick.
func (r *Replica) broadcast(payload []byte) [][]byte {
	if r.bcast == nil {
		r.bcast = make([][]byte, r.env.Plan.N)
	}
	for j := range r.bcast {
		r.bcast[j] = payload
	}
	return r.bcast
}

// DeliverRound implements sim.Processor.
func (r *Replica) DeliverRound(round int, inbox [][]byte) {
	plan := r.env.Plan
	if r.id == plan.Source || r.decided || r.err != nil {
		return
	}
	if round == 1 {
		v := eigtree.Default
		if payload := inbox[plan.Source]; len(payload) == 1 {
			v = eigtree.Value(payload[0])
		}
		r.tree.SetRoot(v)
		r.log.Add(1, trace.KindRootStored, int(v), "")
		return
	}
	seg := plan.Segments[r.segIdx]
	switch seg.Kind {
	case SegGather:
		r.gatherRound(round, inbox, seg)
	case SegEcho:
		r.echoRound(round, inbox, seg)
	}
}

// storeRound adds a tree level from this round's messages, applying fault
// masking for known-faulty senders, then runs the Fault Discovery Rule and
// masks the just-stored entries of newly discovered processors. This is the
// per-round ordering prescribed in Section 3.
func (r *Replica) storeRound(round int, inbox [][]byte) bool {
	plan := r.env.Plan
	if _, err := r.tree.AddLevel(); err != nil {
		r.fail(err)
		return false
	}
	for q := 0; q < plan.N; q++ {
		if q == plan.Source {
			continue // the source halts after round 1; later messages are ignored
		}
		if r.list.Contains(q) && !r.env.Opts.DisableMasking {
			continue // Fault Masking Rule: treat as all default values
		}
		// StoreFromPayload fuses DecodeClaim with the store: a wrong-length
		// payload is a missing message (defaults kept), and the wire bytes
		// are read in place — no claim slice materializes.
		if err := r.tree.StoreFromPayload(q, inbox[q]); err != nil {
			r.fail(err)
			return false
		}
	}

	if !r.env.Opts.DisableDiscovery {
		newly, stats := faults.DiscoverStored(r.tree, r.list, plan.T, round)
		r.counters.DiscoveryNodes += stats.NodesChecked
		r.counters.DiscoveryReads += stats.ChildReads
		for _, p := range newly {
			if !r.env.Opts.DisableMasking {
				r.tree.ZeroSender(p)
			}
			r.log.Add(round, trace.KindDiscovery, p, "gathering")
		}
	}
	if nodes := r.tree.NodeCount(); nodes > r.counters.PeakTreeNodes {
		r.counters.PeakTreeNodes = nodes
	}
	return true
}

func (r *Replica) gatherRound(round int, inbox [][]byte, seg Segment) {
	if !r.storeRound(round, inbox) {
		return
	}
	r.segDone++
	if r.segDone < seg.Rounds {
		r.log.Add(round, trace.KindLevelStored, r.tree.Height(), "")
		return
	}

	// Segment complete: shift. tree(s) = conv(s).
	res, err := r.tree.Resolve(seg.Conv, r.env.Plan.T)
	if err != nil {
		r.fail(err)
		return
	}
	r.counters.ResolveOps += res.Ops()
	if seg.Conv == eigtree.ResolveSupport && !r.env.Opts.DisableDiscovery {
		// Algorithm A: Fault Discovery Rule During Conversion (Section 4.2).
		newly, stats := faults.DiscoverConverted(res, r.list, r.env.Plan.T, round)
		r.counters.DiscoveryNodes += stats.NodesChecked
		r.counters.DiscoveryReads += stats.ChildReads
		for _, p := range newly {
			r.log.Add(round, trace.KindDiscovery, p, "conversion")
		}
	}
	r.advanceSegment(round, res.Root().Value(), seg.Conv.String())
}

func (r *Replica) echoRound(round int, inbox [][]byte, seg Segment) {
	if !r.storeRound(round, inbox) {
		return
	}
	if r.tree.Height() == 2 {
		// Three levels: reorder leaves (swap s·p·q ↔ s·q·p), then
		// shift_{3→2}: every intermediate vertex takes its subtree's
		// majority and the leaves are dropped.
		if err := r.tree.Reorder(); err != nil {
			r.fail(err)
			return
		}
		res, err := r.tree.Resolve(eigtree.ResolveMajority, r.env.Plan.T)
		if err != nil {
			r.fail(err)
			return
		}
		r.counters.ResolveOps += res.Ops()
		mid := res.LevelValues(1)
		if cap(r.cvals) < len(mid) {
			r.cvals = make([]eigtree.Value, len(mid))
		}
		vals := r.cvals[:len(mid)]
		for i, cv := range mid {
			vals[i] = cv.Value()
		}
		if err := r.tree.SetLevelValues(1, vals); err != nil {
			r.fail(err)
			return
		}
		r.tree.DropLeaves()
		r.counters.Shifts++
	}
	r.segDone++
	if r.segDone < seg.Rounds {
		r.log.Add(round, trace.KindLevelStored, r.tree.Height(), "echo")
		return
	}

	// Segment complete: final shift_{2→1} yields the decision value.
	res, err := r.tree.Resolve(eigtree.ResolveMajority, r.env.Plan.T)
	if err != nil {
		r.fail(err)
		return
	}
	r.counters.ResolveOps += res.Ops()
	r.advanceSegment(round, res.Root().Value(), "resolve")
}

// advanceSegment installs the shifted preferred value and moves to the next
// segment, or decides if the plan is exhausted.
func (r *Replica) advanceSegment(round int, v eigtree.Value, note string) {
	r.counters.Shifts++
	r.segIdx++
	r.segDone = 0
	if r.segIdx == len(r.env.Plan.Segments) {
		r.decide(round, v)
		return
	}
	next := r.env.Plan.Segments[r.segIdx]
	if want := r.enumFor(next.Kind); r.tree.Enum() != want {
		r.tree = eigtree.NewTree(want)
		r.log.Add(round, trace.KindPhase, int(v), "enter "+kindName(next.Kind))
	}
	r.tree.SetRoot(v)
	r.log.Add(round, trace.KindShift, int(v), note)
}

func kindName(k SegmentKind) string {
	if k == SegEcho {
		return "echo (Algorithm C)"
	}
	return "gathering"
}

func (r *Replica) decide(round int, v eigtree.Value) {
	r.decided = true
	r.decision = v
	r.log.Add(round, trace.KindDecision, int(v), "")
}

func (r *Replica) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("core: replica %d: %w", r.id, err)
	}
}
