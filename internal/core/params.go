package core

import "fmt"

// HybridParams are the derived quantities of the Main Theorem (Section 4.4).
//
// The hybrid shifts from Algorithm A into Algorithm B once it is "safe":
// either a persistent value exists, or at least TAB faults have been
// globally detected, which restores Corollary 1 (of the Hidden Fault Lemma)
// for Algorithm B despite the fault count exceeding B's native resilience.
// Likewise it shifts into Algorithm C once TAC faults are globally detected
// or a persistent value exists. KAB and KBC are the round budgets that
// guarantee those preconditions.
type HybridParams struct {
	// TAB is the global-detection threshold for the A→B shift: the least
	// ℓ with n − 2t + ℓ > ⌊(n−1)/2⌋ (≈ ⌊t/2⌋ for n = 3t+1).
	TAB int
	// TAC is the threshold for the B→C shift: the least ℓ satisfying both
	// n − t − (t−ℓ)² > n/2 and n − 2t + ℓ > n/2 (≈ t − √(n/2 − t)).
	TAC int
	// TBC = TAC − TAB is the number of additional detections the B phase
	// must produce (0 when the A phase already reaches TAC).
	TBC int
	// KAB is the number of rounds of Algorithm A (including round 1) after
	// which either a persistent value exists or TAB faults are globally
	// detected: 2 + TAB + 2⌊(TAB−1)/(b−2)⌋, or 1 when TAB = 0.
	KAB int
	// KBC is the analogous budget for the B phase (entered at the end of
	// B's round 1): 1 + TBC + ⌊TBC/(b−1)⌋, or 0 when TBC = 0.
	KBC int
	// CRounds = t − TAC + 1 rounds of Algorithm C finish the job (one
	// extra round covers rediscovery of the source after the shift).
	CRounds int
	// Total = KAB + KBC + CRounds is the Theorem 1 round count.
	Total int
}

// ComputeHybridParams derives the Main Theorem parameters for (n, t, b).
func ComputeHybridParams(n, t, b int) (HybridParams, error) {
	if n < 3*t+1 {
		return HybridParams{}, fmt.Errorf("core: hybrid params need n ≥ 3t+1 (n=%d, t=%d)", n, t)
	}
	if b < 3 {
		return HybridParams{}, fmt.Errorf("core: hybrid params need b ≥ 3 (b=%d)", b)
	}

	var hp HybridParams

	// TAB: least ℓ ≥ 0 with n − 2t + ℓ > ⌊(n−1)/2⌋.
	hp.TAB = (n-1)/2 + 1 - (n - 2*t)
	if hp.TAB < 0 {
		hp.TAB = 0
	}
	if hp.TAB > t {
		hp.TAB = t
	}

	// TAC: least ℓ ∈ [0, t] with 2(n − t − (t−ℓ)²) > n and 2(n − 2t + ℓ) > n.
	hp.TAC = t // degenerate fallback: C phase of a single round
	for l := 0; l <= t; l++ {
		d := t - l
		if 2*(n-t-d*d) > n && 2*(n-2*t+l) > n {
			hp.TAC = l
			break
		}
	}
	if hp.TAC < hp.TAB {
		// The A phase already certifies more detections than the C shift
		// needs; skip the B phase entirely.
		hp.TAC = hp.TAB
	}
	hp.TBC = hp.TAC - hp.TAB

	if hp.TAB == 0 {
		hp.KAB = 1
	} else {
		hp.KAB = 2 + hp.TAB + 2*((hp.TAB-1)/(b-2))
	}
	if hp.TBC == 0 {
		hp.KBC = 0
	} else {
		hp.KBC = 1 + hp.TBC + hp.TBC/(b-1)
	}
	hp.CRounds = t - hp.TAC + 1
	hp.Total = hp.KAB + hp.KBC + hp.CRounds
	return hp, nil
}
