// Package core implements the paper's agreement algorithms: the
// Exponential Algorithm (Section 3), Algorithms A and B — the two families
// obtained by repeatedly applying the shift operator (Sections 4.1, 4.2) —
// Algorithm C, the adaptation of Dolev–Reischuk–Strong early stopping
// (Section 4.3), and the Hybrid Algorithm of the Main Theorem that shifts
// from A to B to C mid-execution (Section 4.4).
//
// Every algorithm is compiled to a Plan: a fixed schedule of segments, each
// being either a run of Information Gathering rounds ended by a shift
// (tree collapse through a conversion function), or a run of Algorithm C's
// echo rounds. A Replica executes a Plan as a sim.Processor.
package core

import (
	"fmt"

	"shiftgears/internal/eigtree"
)

// Algorithm identifies one of the paper's protocols.
type Algorithm int

const (
	// Exponential is "Exponential Information Gathering with Recursive
	// Majority Voting" (Section 3): n ≥ 3t+1, t+1 rounds, messages O(n^t).
	Exponential Algorithm = iota + 1
	// AlgorithmA is the family of Theorem 2: n ≥ 3t+1, parameter b,
	// conversion by resolve', rounds ≤ t+2+2⌊(t−1)/(b−2)⌋, messages O(n^b).
	AlgorithmA
	// AlgorithmB is the family of Theorem 3: n ≥ 4t+1, parameter b,
	// conversion by resolve, rounds t+1+⌊(t−1)/(b−1)⌋, messages O(n^b).
	AlgorithmB
	// AlgorithmC is the Dolev–Reischuk–Strong adaptation of Theorem 4:
	// t ≤ ⌊√(n/2)⌋, t+1 rounds, messages O(n).
	AlgorithmC
	// Hybrid is the Main Theorem's algorithm: run A, shift into B, shift
	// into C; resilience ⌊(n−1)/3⌋ with the round count of Theorem 1.
	Hybrid
)

// String names the algorithm as the paper does.
func (a Algorithm) String() string {
	switch a {
	case Exponential:
		return "Exponential"
	case AlgorithmA:
		return "A"
	case AlgorithmB:
		return "B"
	case AlgorithmC:
		return "C"
	case Hybrid:
		return "Hybrid"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// SegmentKind distinguishes the two execution modes a plan is built from.
type SegmentKind int

const (
	// SegGather runs Information Gathering rounds on a tree without
	// repetitions and ends with a shift: tree(s) = conv(s), collapsing the
	// tree to its root (shift_{k→1}, Section 4).
	SegGather SegmentKind = iota + 1
	// SegEcho runs Algorithm C rounds on the three-level tree with
	// repetitions: per round, store leaves, discover, mask, reorder, and
	// shift_{3→2}; the segment ends with shift_{2→1} (Section 4.3).
	SegEcho
)

// Segment is one contiguous phase of a plan.
type Segment struct {
	Kind SegmentKind
	// Rounds is the number of communication rounds in the segment
	// (excluding round 1, which is the source broadcast shared by all
	// plans).
	Rounds int
	// Conv is the conversion function applied by the shift ending a
	// SegGather segment (resolve for B/Exponential, resolve' for A).
	Conv eigtree.ResolveKind
}

// Plan is a compiled schedule for one algorithm at fixed (n, t, b).
type Plan struct {
	Algorithm Algorithm
	N         int
	T         int
	B         int // block parameter; 0 when the algorithm has none
	Source    int
	Segments  []Segment
	// TotalRounds includes round 1.
	TotalRounds int
	// MaxGatherLevel is the deepest tree level any gather segment builds,
	// which determines enumeration depth and the O(n^b) message bound.
	MaxGatherLevel int
	// Hybrid holds the Main Theorem's derived parameters when
	// Algorithm == Hybrid.
	Hybrid *HybridParams
}

// MaxResilience returns the largest t the algorithm tolerates at system
// size n: t_A = ⌊(n−1)/3⌋, t_B = ⌊(n−1)/4⌋, t_C = ⌊√(n/2)⌋ (paper
// Sections 4.1–4.3). The hybrid matches Algorithm A.
func MaxResilience(alg Algorithm, n int) int {
	switch alg {
	case Exponential, AlgorithmA, Hybrid:
		return (n - 1) / 3
	case AlgorithmB:
		return (n - 1) / 4
	case AlgorithmC:
		t := isqrt(n / 2)
		// Theorem 4 additionally needs n−2t > n/2, i.e. n > 4t, which binds
		// only for t ≤ 2.
		for t > 0 && n <= 4*t {
			t--
		}
		return t
	default:
		return 0
	}
}

// isqrt returns ⌊√x⌋.
func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// NewPlan validates (n, t, b) for the algorithm and compiles its schedule.
// Source is fixed to processor 0's id by NewPlanWithSource callers that
// don't care; here it is an explicit argument for generality.
func NewPlan(alg Algorithm, n, t, b, source int) (*Plan, error) {
	if n < 4 {
		return nil, fmt.Errorf("core: n = %d; the problem requires at least 4 processors", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("core: t = %d; resilience must be at least 1", t)
	}
	if source < 0 || source >= n {
		return nil, fmt.Errorf("core: source %d out of range [0, %d)", source, n)
	}

	p := &Plan{Algorithm: alg, N: n, T: t, B: b, Source: source}
	switch alg {
	case Exponential:
		if n < 3*t+1 {
			return nil, fmt.Errorf("core: Exponential Algorithm requires n ≥ 3t+1 (n=%d, t=%d)", n, t)
		}
		p.B = 0
		p.Segments = []Segment{{Kind: SegGather, Rounds: t, Conv: eigtree.ResolveMajority}}

	case AlgorithmA:
		if n < 3*t+1 {
			return nil, fmt.Errorf("core: Algorithm A requires n ≥ 3t+1 (n=%d, t=%d)", n, t)
		}
		if b < 3 || b > t {
			return nil, fmt.Errorf("core: Algorithm A requires 2 < b ≤ t (b=%d, t=%d)", b, t)
		}
		if b == t {
			// "If b = t, Algorithm A is exactly the Exponential Algorithm
			// with resolve'."
			p.Segments = []Segment{{Kind: SegGather, Rounds: t, Conv: eigtree.ResolveSupport}}
			break
		}
		x, y := (t-1)/(b-2), (t-1)%(b-2)
		for i := 0; i < x; i++ {
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: b, Conv: eigtree.ResolveSupport})
		}
		if y > 0 {
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: y + 2, Conv: eigtree.ResolveSupport})
		}

	case AlgorithmB:
		if n < 4*t+1 {
			return nil, fmt.Errorf("core: Algorithm B requires n ≥ 4t+1 (n=%d, t=%d)", n, t)
		}
		if b < 2 || b > t {
			return nil, fmt.Errorf("core: Algorithm B requires 1 < b ≤ t (b=%d, t=%d)", b, t)
		}
		if b == t {
			// "If b = t, then Algorithm B is just the Exponential Algorithm."
			p.Segments = []Segment{{Kind: SegGather, Rounds: t, Conv: eigtree.ResolveMajority}}
			break
		}
		x, y := (t-1)/(b-1), (t-1)%(b-1)
		for i := 0; i < x; i++ {
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: b, Conv: eigtree.ResolveMajority})
		}
		if y > 0 {
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: y + 1, Conv: eigtree.ResolveMajority})
		}

	case AlgorithmC:
		if 2*t*t > n {
			return nil, fmt.Errorf("core: Algorithm C requires t ≤ ⌊√(n/2)⌋ (n=%d, t=%d)", n, t)
		}
		if n <= 4*t {
			return nil, fmt.Errorf("core: Algorithm C requires n > 4t (n=%d, t=%d)", n, t)
		}
		p.B = 0
		p.Segments = []Segment{{Kind: SegEcho, Rounds: t}}

	case Hybrid:
		if n < 3*t+1 {
			return nil, fmt.Errorf("core: Hybrid requires n ≥ 3t+1 (n=%d, t=%d)", n, t)
		}
		if t < 3 {
			return nil, fmt.Errorf("core: Hybrid requires t ≥ 3 (t=%d); use Exponential or A below that", t)
		}
		if b < 3 || b > t {
			return nil, fmt.Errorf("core: Hybrid requires 2 < b ≤ t (b=%d, t=%d)", b, t)
		}
		hp, err := ComputeHybridParams(n, t, b)
		if err != nil {
			return nil, err
		}
		p.Hybrid = &hp
		// Algorithm A phase: k_AB rounds including round 1.
		if hp.TAB >= 1 {
			xa, ya := (hp.TAB-1)/(b-2), (hp.TAB-1)%(b-2)
			for i := 0; i < xa; i++ {
				p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: b, Conv: eigtree.ResolveSupport})
			}
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: ya + 2, Conv: eigtree.ResolveSupport})
		}
		// Algorithm B phase: k_BC rounds, entered at the end of B's round 1.
		if hp.TBC >= 1 {
			xb, yb := hp.TBC/(b-1), hp.TBC%(b-1)
			for i := 0; i < xb; i++ {
				p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: b, Conv: eigtree.ResolveMajority})
			}
			p.Segments = append(p.Segments, Segment{Kind: SegGather, Rounds: yb + 1, Conv: eigtree.ResolveMajority})
		}
		// Algorithm C phase: t − t_AC + 1 rounds from C's round 2 on.
		p.Segments = append(p.Segments, Segment{Kind: SegEcho, Rounds: hp.CRounds})

	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", int(alg))
	}

	p.TotalRounds = 1
	for _, seg := range p.Segments {
		p.TotalRounds += seg.Rounds
		if seg.Kind == SegGather && seg.Rounds > p.MaxGatherLevel {
			p.MaxGatherLevel = seg.Rounds
		}
	}
	return p, nil
}

// NeedsGather reports whether any segment uses the tree without repetitions.
func (p *Plan) NeedsGather() bool {
	for _, s := range p.Segments {
		if s.Kind == SegGather {
			return true
		}
	}
	return false
}

// NeedsEcho reports whether any segment uses Algorithm C's tree with
// repetitions.
func (p *Plan) NeedsEcho() bool {
	for _, s := range p.Segments {
		if s.Kind == SegEcho {
			return true
		}
	}
	return false
}

// PaperRoundBound returns the round count the paper states for the plan's
// algorithm and parameters:
//
//	Exponential: t+1                       (Proposition 1)
//	A:           t+2+2⌊(t−1)/(b−2)⌋        (Theorem 2, worst case)
//	B:           t+1+⌊(t−1)/(b−1)⌋         (Theorem 3, worst case)
//	C:           t+1                       (Theorem 4)
//	Hybrid:      k_AB+k_BC+t−t_AC+1        (Theorem 1)
func (p *Plan) PaperRoundBound() int {
	switch p.Algorithm {
	case Exponential, AlgorithmC:
		return p.T + 1
	case AlgorithmA:
		if p.B == p.T {
			return p.T + 1
		}
		return p.T + 2 + 2*((p.T-1)/(p.B-2))
	case AlgorithmB:
		if p.B == p.T {
			return p.T + 1
		}
		return p.T + 1 + (p.T-1)/(p.B-1)
	case Hybrid:
		return p.Hybrid.Total
	default:
		return 0
	}
}

// MessageBoundNodes returns the paper's bound on the largest message of the
// plan, counted in values (one byte each): the number of leaves of the
// deepest tree broadcast, O(n^b) for A/B, O(n^{t}) for the Exponential
// Algorithm, and n for C (the intermediate vector).
func (p *Plan) MessageBoundNodes() int {
	maxMsg := 1
	if p.NeedsEcho() {
		maxMsg = p.N
	}
	if p.MaxGatherLevel > 0 {
		// The largest gather broadcast carries the leaves of the level
		// built in the segment's last round minus one (a round h+1 message
		// describes the round-h tree's leaves): level MaxGatherLevel-1.
		size := 1
		for h := 0; h < p.MaxGatherLevel-1; h++ {
			size *= p.N - 1 - h
		}
		if size > maxMsg {
			maxMsg = size
		}
	}
	return maxMsg
}
