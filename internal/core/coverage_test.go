package core

import (
	"testing"

	"shiftgears/internal/eigtree"
)

func TestSourcePreferredIsInitialValue(t *testing.T) {
	plan := mustPlan(t, Exponential, 7, 2, 0)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewReplica(env, plan.Source, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Preferred() != 9 {
		t.Fatalf("source preferred = %d, want its initial value", src.Preferred())
	}
}

func TestNonZeroSourceAcrossAlgorithms(t *testing.T) {
	// The source id is a free parameter everywhere (enumeration, plans,
	// discovery); sweep it across all algorithms with adversarial load.
	cases := []struct {
		alg     Algorithm
		n, t, b int
	}{
		{Exponential, 7, 2, 0},
		{AlgorithmB, 13, 3, 2},
		{AlgorithmA, 13, 4, 3},
		{AlgorithmC, 18, 3, 0},
		{Hybrid, 13, 4, 3},
	}
	for _, tc := range cases {
		for _, source := range []int{1, tc.n / 2, tc.n - 1} {
			plan, err := NewPlan(tc.alg, tc.n, tc.t, tc.b, source)
			if err != nil {
				t.Fatalf("%v source=%d: %v", tc.alg, source, err)
			}
			faulty := []int{source, (source + 3) % tc.n} // faulty source + one more
			rr := runPlan(t, plan, 4, faulty, "splitbrain", 1, nil)
			checkAgreementValidity(t, plan, rr, 4)
		}
	}
}

func TestEchoRoundWireSemantics(t *testing.T) {
	// Drive one Algorithm C replica by hand through rounds 1..3 and verify
	// the reorder-then-convert semantics on the wire: after round 3, the
	// intermediate value for a processor equals the majority of the vector
	// that processor broadcast.
	plan := mustPlan(t, AlgorithmC, 9, 2, 0)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(env, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	n := 9
	// Round 1: the source says 1.
	inbox := make([][]byte, n)
	inbox[0] = []byte{1}
	_ = rep.PrepareRound(1)
	rep.DeliverRound(1, inbox)
	if rep.Preferred() != 1 {
		t.Fatalf("root = %d", rep.Preferred())
	}

	// Round 2: everyone (except the halted source) echoes its root; give
	// processor 5 a deviant claim.
	inbox2 := make([][]byte, n)
	for q := 1; q < n; q++ {
		inbox2[q] = []byte{1}
	}
	inbox2[5] = []byte{7}
	out := rep.PrepareRound(2)
	if len(out[0]) != 1 || out[0][0] != 1 {
		t.Fatalf("round-2 broadcast = %v, want the root", out[0])
	}
	rep.DeliverRound(2, inbox2)

	// Round 3: everyone broadcasts its level-1 vector (9 values). Build
	// vectors matching what each correct processor would hold; processor
	// 5's vector is junk.
	honest := make([]byte, n)
	for q := 1; q < n; q++ {
		honest[q] = 1
	}
	honest[5] = 7 // everyone stored 7 for processor 5
	junk := make([]byte, n)
	for i := range junk {
		junk[i] = 9
	}
	inbox3 := make([][]byte, n)
	for q := 1; q < n; q++ {
		inbox3[q] = honest
	}
	inbox3[5] = junk
	out3 := rep.PrepareRound(3)
	if len(out3[0]) != n {
		t.Fatalf("round-3 broadcast = %d bytes, want n", len(out3[0]))
	}
	rep.DeliverRound(3, inbox3)

	// After reorder + shift_{3→2}, the intermediate value for q is the
	// majority of the vector q sent: 1 for correct q, 9 for processor 5,
	// 0 for the silent source.
	lvl1 := rep.tree.LevelValues(1)
	for q := 1; q < n; q++ {
		want := eigtree.Value(1)
		if q == 5 {
			want = 9
		}
		if lvl1[q] != want {
			t.Fatalf("intermediate[%d] = %d, want %d", q, lvl1[q], want)
		}
	}
	if lvl1[0] != eigtree.Default {
		t.Fatalf("source slot = %d, want default (source is silent)", lvl1[0])
	}
	// The final round just decided (t+1 = 3 rounds): majority of the
	// intermediates is 1.
	if v, ok := rep.Decided(); !ok || v != 1 {
		t.Fatalf("decision = %d, %v", v, ok)
	}
}

func TestResolutionLevelValues(t *testing.T) {
	e, err := eigtree.NewEnum(5, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		t.Fatal(err)
	}
	copy(tr.LevelValues(1), []eigtree.Value{2, 2, 2, 3})
	res, err := tr.Resolve(eigtree.ResolveMajority, 1)
	if err != nil {
		t.Fatal(err)
	}
	leaves := res.LevelValues(1)
	if len(leaves) != 4 || leaves[0] != eigtree.CV(2) || leaves[3] != eigtree.CV(3) {
		t.Fatalf("LevelValues = %v", leaves)
	}
	if eigtree.ResolveKind(42).String() == "" {
		t.Fatal("unknown kind must render something")
	}
}
