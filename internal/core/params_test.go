package core

import "testing"

func TestComputeHybridParamsKnownValues(t *testing.T) {
	// Hand-computed instances of the Main Theorem's derivations.
	cases := []struct {
		n, t, b int
		want    HybridParams
	}{
		// n=13, t=4, b=3: t_AB = ⌊t/2⌋ = 2; t_AC: (4−ℓ)² < 13/2−4 → ℓ≥3 and
		// 2(13−8+ℓ)>13 → ℓ≥2 ⇒ 3; t_BC=1; k_AB=2+2+2⌊1/1⌋=6; k_BC=1+1+0=2;
		// C rounds = 4−3+1 = 2; total 10.
		{13, 4, 3, HybridParams{TAB: 2, TAC: 3, TBC: 1, KAB: 6, KBC: 2, CRounds: 2, Total: 10}},
		// n=31, t=10, b=3: t_AB=5; (10−ℓ)² < 15.5−10 → ℓ≥8; t_BC=3;
		// k_AB=2+5+2·4=15; k_BC=1+3+1=5; C=3; total 23.
		{31, 10, 3, HybridParams{TAB: 5, TAC: 8, TBC: 3, KAB: 15, KBC: 5, CRounds: 3, Total: 23}},
		// n=10, t=3, b=3: t_AB=⌊3/2⌋… (n−1)/2+1−(n−2t) = 4+1−4 = 1; t_AC:
		// (3−ℓ)² < 5−3=2 → ℓ≥2, 2(10−6+ℓ)>10 → ℓ≥2 ⇒ 2; t_BC=1;
		// k_AB=2+1+0=3; k_BC=1+1+0=2; C=2; total 7.
		{10, 3, 3, HybridParams{TAB: 1, TAC: 2, TBC: 1, KAB: 3, KBC: 2, CRounds: 2, Total: 7}},
	}
	for _, tc := range cases {
		got, err := ComputeHybridParams(tc.n, tc.t, tc.b)
		if err != nil {
			t.Fatalf("ComputeHybridParams(%d, %d, %d): %v", tc.n, tc.t, tc.b, err)
		}
		if got != tc.want {
			t.Errorf("ComputeHybridParams(%d, %d, %d) = %+v, want %+v", tc.n, tc.t, tc.b, got, tc.want)
		}
	}
}

func TestComputeHybridParamsErrors(t *testing.T) {
	if _, err := ComputeHybridParams(12, 4, 3); err == nil {
		t.Error("n < 3t+1 accepted")
	}
	if _, err := ComputeHybridParams(13, 4, 2); err == nil {
		t.Error("b < 3 accepted")
	}
}

func TestHybridParamsInvariants(t *testing.T) {
	// Over a parameter sweep, the derived thresholds satisfy the
	// inequalities the Main Theorem's proof needs.
	for tt := 3; tt <= 15; tt++ {
		for extra := 0; extra <= 2; extra++ {
			n := 3*tt + 1 + extra
			for b := 3; b <= tt; b++ {
				hp, err := ComputeHybridParams(n, tt, b)
				if err != nil {
					t.Fatalf("n=%d t=%d b=%d: %v", n, tt, b, err)
				}
				if hp.TAB < 0 || hp.TAB > tt || hp.TAC < hp.TAB || hp.TAC > tt {
					t.Fatalf("n=%d t=%d b=%d: thresholds out of order: %+v", n, tt, b, hp)
				}
				if hp.TBC != hp.TAC-hp.TAB {
					t.Fatalf("TBC mismatch: %+v", hp)
				}
				// Shift-to-B safety: n − 2t + TAB > ⌊(n−1)/2⌋ (Corollary 1
				// restored after t_AB global detections).
				if n-2*tt+hp.TAB <= (n-1)/2 {
					t.Errorf("n=%d t=%d: B-shift condition fails: n−2t+TAB = %d ≤ %d",
						n, tt, n-2*tt+hp.TAB, (n-1)/2)
				}
				// Shift-to-C safety: n − t − (t−TAC)² > n/2 and n − 2t + TAC > n/2.
				d := tt - hp.TAC
				if 2*(n-tt-d*d) <= n {
					t.Errorf("n=%d t=%d: C-shift condition 1 fails with TAC=%d", n, tt, hp.TAC)
				}
				if 2*(n-2*tt+hp.TAC) <= n {
					t.Errorf("n=%d t=%d: C-shift condition 2 fails with TAC=%d", n, tt, hp.TAC)
				}
				if hp.CRounds != tt-hp.TAC+1 || hp.CRounds < 1 {
					t.Errorf("n=%d t=%d: CRounds = %d", n, tt, hp.CRounds)
				}
				if hp.Total != hp.KAB+hp.KBC+hp.CRounds {
					t.Errorf("n=%d t=%d: total %d ≠ %d+%d+%d", n, tt, hp.Total, hp.KAB, hp.KBC, hp.CRounds)
				}
			}
		}
	}
}

func TestHybridParamsAsymptotics(t *testing.T) {
	// Theorem 1's simplified form: rounds = t + O(t/b) + O(1). Check the
	// overhead over t shrinks with b at fixed t, and is ≤ t/(b−2) +
	// t/(2(b−1)) + 6 across a sweep.
	const tt = 30
	n := 3*tt + 1
	prev := 1 << 30
	for b := 3; b <= 12; b++ {
		hp, err := ComputeHybridParams(n, tt, b)
		if err != nil {
			t.Fatal(err)
		}
		overhead := hp.Total - tt
		if overhead > prev {
			t.Errorf("b=%d: overhead %d grew from %d (should shrink with b)", b, overhead, prev)
		}
		prev = overhead
		limit := tt/(b-2) + tt/(2*(b-1)) + 6
		if overhead > limit {
			t.Errorf("b=%d: overhead %d exceeds t/(b−2)+t/(2(b−1))+O(1) = %d", b, overhead, limit)
		}
	}
}
