package core

import "testing"

// TestLemma5IntermediateVertices is Algorithm C's Lemma 5 on live runs:
// at the end of every round k ≥ 3, all correct processors compute the same
// converted value for the intermediate vertex s·p of every CORRECT p (the
// post-reorder subtree under s·p holds exactly the vector p broadcast, so
// its majority is common). The echo engine applies that conversion when it
// installs level 1, so the installed intermediate values must agree across
// correct replicas at correct slots.
func TestLemma5IntermediateVertices(t *testing.T) {
	plan := mustPlan(t, AlgorithmC, 18, 3, 0)
	faulty := []int{0, 5, 11} // equivocating source and two colluders
	isFaulty := map[int]bool{0: true, 5: true, 11: true}

	hook := func(round int, rr *runResult) {
		if round < 3 || round > plan.TotalRounds {
			return
		}
		correct := rr.correct(plan)
		base := correct[0].tree.LevelValues(1)
		for _, rep := range correct[1:] {
			lvl := rep.tree.LevelValues(1)
			for p := 0; p < plan.N; p++ {
				if isFaulty[p] {
					continue // faulty slots may legitimately differ... (they don't under resolve, but Lemma 5 only covers correct p)
				}
				if lvl[p] != base[p] {
					t.Fatalf("round %d: intermediate s·%d differs: %d vs %d (Lemma 5 violated)",
						round, p, lvl[p], base[p])
				}
			}
		}
	}
	rr := runLemma(t, plan, faulty, "splitbrain", hook)
	checkAgreementValidity(t, plan, rr, 1)
}

// TestSpaceBoundAcrossPhases: the paper's space claim — the hybrid shares
// Algorithm A's space requirement O(n^b) — holds on every replica: the
// peak tree never exceeds the full b-level gather tree (plus the echo
// tree's fixed 1+n+n²).
func TestSpaceBoundAcrossPhases(t *testing.T) {
	for _, tc := range []struct{ n, t, b int }{{13, 4, 3}, {16, 5, 3}, {16, 5, 4}} {
		plan := mustPlan(t, Hybrid, tc.n, tc.t, tc.b)
		gatherBound := 1
		size := 1
		for h := 0; h < tc.b; h++ {
			size *= tc.n - 1 - h
			gatherBound += size
		}
		echoBound := 1 + tc.n + tc.n*tc.n
		bound := gatherBound
		if echoBound > bound {
			bound = echoBound
		}
		rr := runPlan(t, plan, 1, []int{0, 2, 5, 9}, "splitbrain", 0, nil)
		for _, rep := range rr.correct(plan) {
			if peak := rep.Counters().PeakTreeNodes; peak > bound {
				t.Fatalf("n=%d t=%d b=%d: replica %d peak %d nodes exceeds O(n^b) bound %d",
					tc.n, tc.t, tc.b, rep.ID(), peak, bound)
			}
		}
	}
}

// TestEchoFirstRoundClaimLength: Algorithm C's round 2 message is a single
// value (the root), not the full vector — the shift into "round 2"
// semantics after the hybrid's B phase depends on this.
func TestEchoFirstRoundClaimLength(t *testing.T) {
	plan := mustPlan(t, Hybrid, 13, 4, 3)
	env, err := NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplica(env, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Drive it with silent inputs through all rounds; at the C-phase entry
	// round the broadcast must be 1 byte, the next rounds n bytes.
	cEntry := plan.Hybrid.KAB + plan.Hybrid.KBC + 1
	inbox := make([][]byte, plan.N)
	for r := 1; r <= plan.TotalRounds; r++ {
		out := rep.PrepareRound(r)
		if r == cEntry && len(out[0]) != 1 {
			t.Fatalf("C-phase round-2 broadcast = %d bytes, want 1", len(out[0]))
		}
		if r == cEntry+1 && plan.Hybrid.CRounds > 1 && len(out[0]) != plan.N {
			t.Fatalf("C-phase round-3 broadcast = %d bytes, want n", len(out[0]))
		}
		rep.DeliverRound(r, inbox)
	}
	if _, ok := rep.Decided(); !ok {
		t.Fatal("replica did not decide on silence")
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}
