package faults

import (
	"testing"

	"shiftgears/internal/eigtree"
)

// twoLevel builds a two-level no-repetition tree over n processors with
// source 0 and the given child values (length n-1, in ascending label
// order 1..n-1).
func twoLevel(t *testing.T, n int, children []eigtree.Value) *eigtree.Tree {
	t.Helper()
	e, err := eigtree.NewEnum(n, 0, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		t.Fatal(err)
	}
	copy(tr.LevelValues(1), children)
	return tr
}

func TestDiscoverStoredNoMajorityAccusesParent(t *testing.T) {
	// Root's children split 3/3: no majority → the root's processor (the
	// source) is accused by clause 1.
	tr := twoLevel(t, 7, []eigtree.Value{1, 1, 1, 0, 0, 0})
	l := NewList(7)
	newly, stats := DiscoverStored(tr, l, 2, 2)
	if len(newly) != 1 || newly[0] != 0 {
		t.Fatalf("accused %v, want [0] (the source)", newly)
	}
	if !l.Contains(0) {
		t.Fatal("source not added to list")
	}
	if r, _ := l.DiscoveryRound(0); r != 2 {
		t.Fatalf("discovery round = %d, want 2", r)
	}
	if stats.NodesChecked != 1 || stats.ChildReads != 6 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestDiscoverStoredDissentThreshold(t *testing.T) {
	// n=10, t=3, root has 9 children. Majority value exists; the rule
	// accuses only when MORE than t−|L| non-L children dissent.
	for _, tc := range []struct {
		dissenters int
		want       bool
	}{
		{3, false}, // exactly t: allowed (up to t faulty children may lie)
		{4, true},  // t+1: impossible for a correct parent
	} {
		children := make([]eigtree.Value, 9)
		for i := range children {
			if i < tc.dissenters {
				children[i] = 1
			}
		}
		tr := twoLevel(t, 10, children)
		l := NewList(10)
		newly, _ := DiscoverStored(tr, l, 3, 2)
		if got := len(newly) == 1; got != tc.want {
			t.Errorf("%d dissenters: accused=%v, want %v", tc.dissenters, newly, tc.want)
		}
	}
}

func TestDiscoverStoredBudgetShrinksWithList(t *testing.T) {
	// With one processor already in L, budget is t−1: 3 dissenters now
	// trigger (3 > 3−1) even though they didn't with an empty list.
	children := make([]eigtree.Value, 9)
	children[0], children[1], children[2] = 1, 1, 1
	tr := twoLevel(t, 10, children)
	l := NewList(10)
	l.Add(9, 1) // 9's child (value 0) now agrees with the majority anyway
	newly, _ := DiscoverStored(tr, l, 3, 2)
	if len(newly) != 1 || newly[0] != 0 {
		t.Fatalf("accused %v, want the source", newly)
	}
}

func TestDiscoverStoredListedDissentersDoNotCount(t *testing.T) {
	// Dissenting children corresponding to processors already in L are
	// excluded from the dissent count.
	children := make([]eigtree.Value, 9)
	children[0], children[1], children[2], children[3] = 1, 1, 1, 1 // labels 1..4 dissent
	tr := twoLevel(t, 10, children)
	l := NewList(10)
	l.Add(1, 1) // label 1's dissent no longer counts: 3 dissenters ≤ t−|L|=2? 3 > 2 → still accused
	newly, _ := DiscoverStored(tr, l, 3, 2)
	if len(newly) != 1 || newly[0] != 0 {
		t.Fatalf("accused %v, want [0]", newly)
	}
	// With t=4 and all four dissenters listed: budget t−|L| = 0 and zero
	// unlisted dissent → no accusation (the growing list absorbs exactly
	// the dissent it explains).
	l2 := NewList(10)
	l2.Add(1, 1)
	l2.Add(2, 1)
	l2.Add(3, 1)
	l2.Add(4, 1)
	newly2, _ := DiscoverStored(tr, l2, 4, 2)
	if len(newly2) != 0 {
		t.Fatalf("accused %v with all dissenters listed, want none", newly2)
	}
}

func TestDiscoverStoredSkipsAlreadyListedParent(t *testing.T) {
	tr := twoLevel(t, 7, []eigtree.Value{1, 1, 1, 0, 0, 0})
	l := NewList(7)
	l.Add(0, 1)
	newly, _ := DiscoverStored(tr, l, 2, 2)
	if len(newly) != 0 {
		t.Fatalf("re-accused a listed processor: %v", newly)
	}
}

func TestDiscoverStoredDeeperLevelAccusesLastLabel(t *testing.T) {
	// Three-level tree, n=7, t=2. Make node s·3's children split so that
	// processor 3 is accused; all other parents unanimous.
	e, err := eigtree.NewEnum(7, 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		t.Fatal(err)
	}
	for i := range tr.LevelValues(1) {
		tr.LevelValues(1)[i] = 1
	}
	if _, err := tr.AddLevel(); err != nil {
		t.Fatal(err)
	}
	lvl2 := tr.LevelValues(2)
	for i := range lvl2 {
		lvl2[i] = 1
	}
	cc := e.ChildCount(1)
	for i := 0; i < e.Size(1); i++ {
		if e.LastLabel(1, i) == 3 {
			// Children split 2/2/1: no strict majority → clause 1 fires.
			vals := []eigtree.Value{0, 0, 1, 1, 2}
			for k := 0; k < cc; k++ {
				lvl2[i*cc+k] = vals[k]
			}
		}
	}
	l := NewList(7)
	newly, stats := DiscoverStored(tr, l, 2, 3)
	if len(newly) != 1 || newly[0] != 3 {
		t.Fatalf("accused %v, want [3]", newly)
	}
	if stats.NodesChecked != e.Size(1) {
		t.Fatalf("checked %d nodes, want %d", stats.NodesChecked, e.Size(1))
	}
}

func TestDiscoverStoredNoFalseAccusationOnUnanimity(t *testing.T) {
	tr := twoLevel(t, 7, []eigtree.Value{1, 1, 1, 1, 1, 1})
	l := NewList(7)
	if newly, _ := DiscoverStored(tr, l, 2, 2); len(newly) != 0 {
		t.Fatalf("accused %v on unanimous children", newly)
	}
}

func TestDiscoverStoredEmptyTree(t *testing.T) {
	e, _ := eigtree.NewEnum(5, 0, false, 1)
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	if newly, _ := DiscoverStored(tr, NewList(5), 1, 1); newly != nil {
		t.Fatalf("accused %v on rootless/one-level tree", newly)
	}
}

func TestDiscoverStoredRepeatTreeIgnoresSourceSlot(t *testing.T) {
	// Algorithm C's tree: the source's child slot is permanently default
	// because the source halts after round 1; it must not count as dissent.
	// n=9, t=2: children of root = 9 slots; s-slot 0, two (faulty,
	// silent) slots 0, six slots 1. Dissent = 2 (not 3) ≤ t → no accusation.
	e, err := eigtree.NewEnum(9, 0, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		t.Fatal(err)
	}
	lvl := tr.LevelValues(1)
	for i := range lvl {
		lvl[i] = 1
	}
	lvl[0], lvl[1], lvl[3] = 0, 0, 0 // source slot + two silent faults
	l := NewList(9)
	if newly, _ := DiscoverStored(tr, l, 2, 2); len(newly) != 0 {
		t.Fatalf("false accusation %v via the dead source slot", newly)
	}
	// A third real dissenter crosses the threshold.
	lvl[5] = 0
	if newly, _ := DiscoverStored(tr, l, 2, 2); len(newly) != 1 || newly[0] != 0 {
		t.Fatalf("accused %v, want [0]", newly)
	}
}

func TestDiscoverConvertedAccusesOnConvertedValues(t *testing.T) {
	// Algorithm A's conversion-time rule: level-1 node s·3 gets children
	// whose *converted* values split without majority → 3 accused.
	e, err := eigtree.NewEnum(7, 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	_, _ = tr.AddLevel()
	_, _ = tr.AddLevel()
	lvl2 := tr.LevelValues(2)
	for i := range lvl2 {
		lvl2[i] = 1
	}
	cc := e.ChildCount(1)
	for i := 0; i < e.Size(1); i++ {
		if e.LastLabel(1, i) == 3 {
			// Leaves under s·3: {1,1,2,2,3}: nothing reaches t+1=3 → those
			// leaves convert to themselves; with no majority among them,
			// clause 1 fires at s·3.
			vals := []eigtree.Value{1, 1, 2, 2, 3}
			for k := 0; k < cc; k++ {
				lvl2[i*cc+k] = vals[k]
			}
		}
	}
	res, err := tr.Resolve(eigtree.ResolveSupport, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := NewList(7)
	newly, stats := DiscoverConverted(res, l, 2, 4)
	if len(newly) != 1 || newly[0] != 3 {
		t.Fatalf("accused %v, want [3]", newly)
	}
	if stats.NodesChecked != 1+e.Size(1) {
		t.Fatalf("checked %d nodes, want root+level1 = %d", stats.NodesChecked, 1+e.Size(1))
	}
	if r, _ := l.DiscoveryRound(3); r != 4 {
		t.Fatalf("round = %d, want 4", r)
	}
}

func TestDiscoverConvertedCleanTreeNoAccusations(t *testing.T) {
	e, _ := eigtree.NewEnum(7, 0, false, 2)
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	_, _ = tr.AddLevel()
	_, _ = tr.AddLevel()
	for i := range tr.LevelValues(2) {
		tr.LevelValues(2)[i] = 1
	}
	res, err := tr.Resolve(eigtree.ResolveSupport, 2)
	if err != nil {
		t.Fatal(err)
	}
	if newly, _ := DiscoverConverted(res, NewList(7), 2, 3); len(newly) != 0 {
		t.Fatalf("accused %v on a unanimous tree", newly)
	}
}

func TestDiscoverConvertedSingleLevel(t *testing.T) {
	e, _ := eigtree.NewEnum(7, 0, false, 1)
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	res, err := tr.Resolve(eigtree.ResolveSupport, 2)
	if err != nil {
		t.Fatal(err)
	}
	if newly, _ := DiscoverConverted(res, NewList(7), 2, 2); newly != nil {
		t.Fatalf("accused %v on a root-only resolution", newly)
	}
}

func TestDiscoveryDeterministicOrder(t *testing.T) {
	// Two parents trigger in one pass: accusations come out sorted.
	e, _ := eigtree.NewEnum(8, 0, false, 2)
	tr := eigtree.NewTree(e)
	tr.SetRoot(1)
	_, _ = tr.AddLevel()
	_, _ = tr.AddLevel()
	lvl2 := tr.LevelValues(2)
	for i := range lvl2 {
		lvl2[i] = 1
	}
	cc := e.ChildCount(1)
	for i := 0; i < e.Size(1); i++ {
		last := e.LastLabel(1, i)
		if last == 5 || last == 2 {
			for k := 0; k < cc; k++ {
				lvl2[i*cc+k] = eigtree.Value(k % 3) // junk: no majority
			}
		}
	}
	newly, _ := DiscoverStored(tr, NewList(8), 2, 3)
	if len(newly) != 2 || newly[0] != 2 || newly[1] != 5 {
		t.Fatalf("accused %v, want [2 5]", newly)
	}
}
