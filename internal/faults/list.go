// Package faults implements the fault bookkeeping of the paper: the lists
// L_p of processors a correct processor has discovered to be faulty, the
// Fault Discovery Rule applied during Information Gathering (Section 3),
// the Fault Discovery Rule During Conversion used by Algorithm A
// (Section 4.2), and the Fault Masking Rule.
package faults

import (
	"fmt"
	"sort"

	"shiftgears/internal/eigtree"
)

// Discovery records one processor entering a list L_p.
type Discovery struct {
	// Processor is the discovered faulty processor.
	Processor int
	// Round is the communication round at whose end the discovery was made.
	Round int
}

// List is L_p: the set of processors that one correct processor has
// discovered to be faulty, together with the round of each discovery.
// A processor in the list has its subsequent messages masked to the default
// value (Fault Masking Rule). The zero value is not usable; use NewList.
type List struct {
	member []bool
	log    []Discovery
}

// NewList returns an empty list over n processor ids.
func NewList(n int) *List {
	return &List{member: make([]bool, n)}
}

// Reset empties the list back to its NewList state, keeping its storage
// for reuse by a pooled replica.
func (l *List) Reset() {
	for i := range l.member {
		l.member[i] = false
	}
	l.log = l.log[:0]
}

// Contains reports whether p has been discovered faulty.
func (l *List) Contains(p int) bool {
	return p >= 0 && p < len(l.member) && l.member[p]
}

// Len returns |L_p|.
func (l *List) Len() int { return len(l.log) }

// Add records the discovery of p at the end of the given round. It returns
// false when p is already in the list (the rule only adds processors "not
// already in L_p").
func (l *List) Add(p, round int) bool {
	if p < 0 || p >= len(l.member) || l.member[p] {
		return false
	}
	l.member[p] = true
	l.log = append(l.log, Discovery{Processor: p, Round: round})
	return true
}

// Members returns the discovered processors in ascending id order.
func (l *List) Members() []int {
	out := make([]int, 0, len(l.log))
	for p, in := range l.member {
		if in {
			out = append(out, p)
		}
	}
	return out
}

// Log returns the discovery log in discovery order.
func (l *List) Log() []Discovery {
	return append([]Discovery(nil), l.log...)
}

// DiscoveryRound returns the round p was discovered, if it was.
func (l *List) DiscoveryRound(p int) (int, bool) {
	for _, d := range l.log {
		if d.Processor == p {
			return d.Round, true
		}
	}
	return 0, false
}

// String renders the list for traces.
func (l *List) String() string {
	return fmt.Sprintf("L%v", l.Members())
}

// sortedUnique sorts and deduplicates accused ids for deterministic passes.
func sortedUnique(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// majorityOf returns the value held by a strict majority of the cc slots of
// vals, if any. Bottom (⊥) counts as an ordinary symbol, matching the
// conversion-time rule's "majority value among the converted values".
// Counting is O(len(vals)²) by rescanning — fan-outs are at most n, and
// staying off the heap matters more on this per-node path than the
// quadratic constant.
func majorityOf(vals []eigtree.CValue, cc int) (eigtree.CValue, bool) {
	for k, v := range vals {
		seen := false
		for j := 0; j < k; j++ {
			if vals[j] == v {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		count := 0
		for _, w := range vals {
			if w == v {
				count++
			}
		}
		if 2*count > cc {
			return v, true
		}
	}
	return 0, false
}
