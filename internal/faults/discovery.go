package faults

import (
	"shiftgears/internal/eigtree"
)

// PassStats reports what a discovery pass did, for the local-computation
// accounting of the experiment harness.
type PassStats struct {
	// NodesChecked counts the internal nodes the rule was evaluated on.
	NodesChecked int
	// ChildReads counts child values examined (nodes × fan-out).
	ChildReads int
}

// DiscoverStored applies the Fault Discovery Rule (Section 3) to the tree
// after a new level has been stored: for every internal node αr whose
// children were just filled in, processor r (the node's last label) is
// accused when
//
//   - no value is stored at a strict majority of the children of αr, or
//   - a majority value exists, but values other than it are stored at more
//     than t−|L_p| children corresponding to processors not in L_p.
//
// L_p is snapshotted at the start of the pass. Newly accused processors are
// added to the list with the given round and returned in ascending order;
// the caller is responsible for masking their just-stored level entries
// (Tree.ZeroSender), per the ordering discussed in Section 3.
func DiscoverStored(tr *eigtree.Tree, lst *List, t, round int) ([]int, PassStats) {
	var stats PassStats
	deepest := tr.Levels() - 1
	if deepest < 1 {
		return nil, stats
	}
	enum := tr.Enum()
	parents := deepest - 1
	cc := enum.ChildCount(parents)
	children := tr.LevelValues(deepest)
	// Accusations are applied only after the scan (below), so the list's
	// membership and size are stable for the whole pass — the "snapshot"
	// the rule requires is the list itself, read directly.
	budget := t - lst.Len()

	var accused []int
	var valsBuf [64]eigtree.CValue
	vals := valsBuf[:]
	if cc > len(valsBuf) {
		vals = make([]eigtree.CValue, cc)
	}
	vals = vals[:cc]
	for j := 0; j < enum.Size(parents); j++ {
		r := enum.LastLabel(parents, j)
		stats.NodesChecked++
		stats.ChildReads += cc
		if lst.Contains(r) || contains(accused, r) {
			continue // already known or already accused this pass
		}
		for k := 0; k < cc; k++ {
			vals[k] = eigtree.CV(children[j*cc+k])
		}
		maj, ok := majorityOf(vals, cc)
		if !ok {
			accused = append(accused, r)
			continue
		}
		dissent := 0
		for k := 0; k < cc; k++ {
			q := enum.ChildLabel(parents, j, k)
			// Children labelled with the source exist only in Algorithm C's
			// tree with repetitions; the source halts after round 1, so
			// those slots are permanently the default and carry no evidence
			// about r — they do not count as dissent.
			if q == enum.Source() {
				continue
			}
			if !lst.Contains(q) && vals[k] != maj {
				dissent++
			}
		}
		if dissent > budget {
			accused = append(accused, r)
		}
	}

	accused = sortedUnique(accused)
	for _, p := range accused {
		lst.Add(p, round)
	}
	return accused, stats
}

// DiscoverConverted applies Algorithm A's Fault Discovery Rule During
// Conversion (Section 4.2) to a completed resolution: for every internal
// node αr, processor r is accused when
//
//   - there is no majority value among the converted values of the children
//     of αr, or
//   - a majority value v exists, but more than t−|L_p| children not in L_p
//     have converted values other than v.
//
// The list is snapshotted at conversion start; accusations are added with
// the given round and take effect (masking) from the next round on — the
// converted tree itself is not rewritten, matching the paper's use of the
// rule purely to grow L_p for subsequent blocks.
func DiscoverConverted(res *eigtree.Resolution, lst *List, t, round int) ([]int, PassStats) {
	var stats PassStats
	levels := res.Levels()
	if levels < 2 {
		return nil, stats
	}
	enum := res.Enum()
	// As in DiscoverStored: adds happen after the scan, so the live list
	// is the pass snapshot.
	budget := t - lst.Len()

	var accused []int
	for h := 0; h < levels-1; h++ {
		cc := enum.ChildCount(h)
		children := res.LevelValues(h + 1)
		for j := 0; j < enum.Size(h); j++ {
			r := enum.LastLabel(h, j)
			stats.NodesChecked++
			stats.ChildReads += cc
			if lst.Contains(r) || contains(accused, r) {
				continue
			}
			vals := children[j*cc : (j+1)*cc]
			maj, ok := majorityOf(vals, cc)
			if !ok {
				accused = append(accused, r)
				continue
			}
			dissent := 0
			for k := 0; k < cc; k++ {
				q := enum.ChildLabel(h, j, k)
				if q == enum.Source() {
					continue // see DiscoverStored: dead source slots
				}
				if !lst.Contains(q) && vals[k] != maj {
					dissent++
				}
			}
			if dissent > budget {
				accused = append(accused, r)
			}
		}
	}

	accused = sortedUnique(accused)
	for _, p := range accused {
		lst.Add(p, round)
	}
	return accused, stats
}

func contains(ids []int, p int) bool {
	for _, id := range ids {
		if id == p {
			return true
		}
	}
	return false
}
