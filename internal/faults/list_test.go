package faults

import (
	"testing"

	"shiftgears/internal/eigtree"
)

func TestListBasics(t *testing.T) {
	l := NewList(5)
	if l.Len() != 0 || l.Contains(2) {
		t.Fatal("fresh list not empty")
	}
	if !l.Add(2, 3) {
		t.Fatal("Add(2) returned false")
	}
	if l.Add(2, 4) {
		t.Fatal("re-adding 2 must return false (rule adds only processors not already in L)")
	}
	if !l.Contains(2) || l.Len() != 1 {
		t.Fatalf("after add: contains=%v len=%d", l.Contains(2), l.Len())
	}
	if r, ok := l.DiscoveryRound(2); !ok || r != 3 {
		t.Fatalf("DiscoveryRound(2) = %d, %v", r, ok)
	}
	if _, ok := l.DiscoveryRound(4); ok {
		t.Fatal("DiscoveryRound of undiscovered processor succeeded")
	}
}

func TestListOutOfRange(t *testing.T) {
	l := NewList(3)
	if l.Add(-1, 1) || l.Add(3, 1) {
		t.Fatal("out-of-range ids must not be added")
	}
	if l.Contains(-1) || l.Contains(3) {
		t.Fatal("out-of-range Contains must be false")
	}
}

func TestListMembersSortedAndLogOrdered(t *testing.T) {
	l := NewList(8)
	l.Add(5, 2)
	l.Add(1, 3)
	l.Add(3, 3)
	members := l.Members()
	if len(members) != 3 || members[0] != 1 || members[1] != 3 || members[2] != 5 {
		t.Fatalf("Members() = %v, want [1 3 5]", members)
	}
	log := l.Log()
	if len(log) != 3 || log[0] != (Discovery{5, 2}) || log[1] != (Discovery{1, 3}) || log[2] != (Discovery{3, 3}) {
		t.Fatalf("Log() = %v", log)
	}
	// Log returns a copy.
	log[0].Processor = 99
	if l.Log()[0].Processor != 5 {
		t.Fatal("Log() aliases internal storage")
	}
}

func TestListString(t *testing.T) {
	l := NewList(4)
	l.Add(2, 1)
	if l.String() != "L[2]" {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestMajorityOfAllocFree(t *testing.T) {
	// majorityOf sits on the per-node discovery path; it must stay off
	// the heap (it used to build a count map per call).
	vals := []eigtree.CValue{1, 1, 2, 1, eigtree.Bottom, 1}
	allocs := testing.AllocsPerRun(100, func() {
		if v, ok := majorityOf(vals, len(vals)); !ok || v != 1 {
			t.Fatalf("majorityOf = %v %v", v, ok)
		}
	})
	if allocs != 0 {
		t.Fatalf("majorityOf allocates %v per call", allocs)
	}
}

func TestSortedUnique(t *testing.T) {
	got := sortedUnique([]int{3, 1, 3, 2, 1})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("sortedUnique = %v", got)
	}
	if out := sortedUnique(nil); len(out) != 0 {
		t.Fatalf("sortedUnique(nil) = %v", out)
	}
}

func TestMajorityOf(t *testing.T) {
	cv := func(v eigtree.Value) eigtree.CValue { return eigtree.CV(v) }
	cases := []struct {
		vals []eigtree.CValue
		cc   int
		want eigtree.CValue
		ok   bool
	}{
		{[]eigtree.CValue{cv(1), cv(1), cv(0)}, 3, cv(1), true},
		{[]eigtree.CValue{cv(1), cv(0)}, 2, 0, false},
		{[]eigtree.CValue{eigtree.Bottom, eigtree.Bottom, cv(1)}, 3, eigtree.Bottom, true}, // ⊥ counts as a symbol
		{[]eigtree.CValue{}, 0, 0, false},
	}
	for i, tc := range cases {
		got, ok := majorityOf(tc.vals, tc.cc)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("case %d: majorityOf = %v, %v; want %v, %v", i, got, ok, tc.want, tc.ok)
		}
	}
}
