package shard

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestDefaultFuncDeterministicAndInRange: the determinism contract — the
// same (seed, k) must route every command identically across independent
// constructions, always into [0, k).
func TestDefaultFuncDeterministicAndInRange(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40} {
		for _, k := range []int{1, 2, 4, 7} {
			a, b := DefaultFunc(seed, k), DefaultFunc(seed, k)
			for v := 0; v < 256; v++ {
				cmd := Value(v)
				sa, sb := a(cmd), b(cmd)
				if sa != sb {
					t.Fatalf("seed %d k %d cmd %d: two constructions disagree (%d vs %d)", seed, k, v, sa, sb)
				}
				if sa < 0 || sa >= k {
					t.Fatalf("seed %d k %d cmd %d: shard %d out of range", seed, k, v, sa)
				}
			}
		}
	}
}

// TestDefaultFuncSeedDecorrelates: distinct seeds must not reproduce the
// same partition (that is the point of seeding the router).
func TestDefaultFuncSeedDecorrelates(t *testing.T) {
	a, b := DefaultFunc(1, 4), DefaultFunc(2, 4)
	for v := 0; v < 256; v++ {
		if a(Value(v)) != b(Value(v)) {
			return
		}
	}
	t.Fatal("seeds 1 and 2 routed all 256 commands identically")
}

// TestDefaultFuncSpreads: at k=4 over all 256 command values, no shard
// may be starved — a sanity floor on the mix, not a uniformity proof.
func TestDefaultFuncSpreads(t *testing.T) {
	counts := make([]int, 4)
	fn := DefaultFunc(1, 4)
	for v := 0; v < 256; v++ {
		counts[fn(Value(v))]++
	}
	for s, c := range counts {
		if c < 256/4/2 {
			t.Fatalf("shard %d starved: %d of 256 commands (counts %v)", s, c, counts)
		}
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0, 1, nil); err == nil {
		t.Fatal("k=0 router built")
	}
	r, err := NewRouter(2, 1, func(Value) int { return 7 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Route(3); err == nil {
		t.Fatal("out-of-range routing function result not surfaced")
	}
	ok, err := NewRouter(4, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", ok.Shards())
	}
	s, err := ok.Route(5)
	if err != nil || s != DefaultFunc(9, 4)(5) {
		t.Fatalf("nil fn did not install DefaultFunc: shard %d err %v", s, err)
	}
}

// TestDriveRunsAllAndJoins: every shard's run executes exactly once, and
// Drive returns only after all of them finish (the bounded-join
// contract), with each shard's error at its own index.
func TestDriveRunsAllAndJoins(t *testing.T) {
	const k = 8
	var ran [k]atomic.Int32
	errs := Drive(k, -1, nil, func(s int) error {
		ran[s].Add(1)
		if s == 3 {
			return fmt.Errorf("shard %d boom", s)
		}
		return nil
	})
	if len(errs) != k {
		t.Fatalf("got %d errors, want %d", len(errs), k)
	}
	for s := 0; s < k; s++ {
		if got := ran[s].Load(); got != 1 {
			t.Fatalf("shard %d ran %d times", s, got)
		}
		if (s == 3) != (errs[s] != nil) {
			t.Fatalf("shard %d error = %v", s, errs[s])
		}
	}
}

// TestDriveFenceOrdersAfterMeta: a fenced shard must observe the meta
// shard's completed run before its own starts; unfenced shards carry no
// such ordering. Run under -race this also exercises the happens-before
// edge through the fence channel.
func TestDriveFenceOrdersAfterMeta(t *testing.T) {
	const k, meta = 4, 3
	fenced := []bool{true, false, true, false}
	var metaDone atomic.Bool
	errs := Drive(k, meta, fenced, func(s int) error {
		if s == meta {
			metaDone.Store(true)
			return nil
		}
		if fenced[s] && !metaDone.Load() {
			return fmt.Errorf("fenced shard %d started before the meta shard finished", s)
		}
		return nil
	})
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
}

// TestDriveMetaErrorStillJoins: the meta shard failing must not wedge
// the fenced shards — the fence lifts either way and every goroutine
// joins.
func TestDriveMetaErrorStillJoins(t *testing.T) {
	const k, meta = 3, 2
	var ran [k]atomic.Int32
	errs := Drive(k, meta, []bool{true, true, false}, func(s int) error {
		ran[s].Add(1)
		if s == meta {
			return fmt.Errorf("meta boom")
		}
		return nil
	})
	for s := 0; s < k; s++ {
		if ran[s].Load() != 1 {
			t.Fatalf("shard %d ran %d times", s, ran[s].Load())
		}
	}
	if errs[meta] == nil {
		t.Fatal("meta error lost")
	}
}
