// Package shard scales the replicated log out past one agreement group:
// it partitions the command space across K independent gear-shifted logs
// and drives them side by side, so aggregate throughput grows with K
// instead of stalling at one n-node group's ceiling.
//
// The package holds the shard layer's substrate — the deterministic
// command router and the concurrent drive harness with its cross-shard
// ordering barrier — while the composition with the public ReplicatedLog
// lives in the top-level shiftgears package (shiftgears.MultiLog), which
// this package cannot import.
//
// Determinism contract: a routing Func must be a pure function of the
// command value — no clocks, randomness, counters, or per-process state —
// because every client, sizing tool, and replay must agree on where a
// command lives. The default router is a seeded SplitMix64 mix of the
// command byte: the same coordinate-keyed construction the chaos fabric
// uses for its fault draws, so equal seeds route identically on every
// run and every machine.
//
// The committee framing (King–Saia, "Breaking the O(n²) Bit Barrier"):
// each shard's n-node agreement group is a committee sampled from a
// larger processor universe. Per-shard work is the old single-log work;
// per-universe-processor work stays sublinear as the universe grows,
// because each processor sits in O(1) committees.
package shard

import (
	"fmt"
	"sync"

	"shiftgears/internal/eigtree"
)

// Value is one client command, as in the log engine.
type Value = eigtree.Value

// Func maps one command to its shard in [0, K). It must be pure (see the
// package determinism contract); a value outside [0, K) is a
// configuration error the Router surfaces at routing time.
type Func func(cmd Value) int

// DefaultFunc is the default routing function: a seeded SplitMix64 mix
// of the command byte, reduced mod k. Distinct seeds decorrelate the
// partition; equal seeds reproduce it exactly.
func DefaultFunc(seed uint64, k int) Func {
	return func(cmd Value) int {
		return int(mix(seed, uint64(cmd)) % uint64(k))
	}
}

// Router maps commands to shards through a validated Func.
type Router struct {
	k  int
	fn Func
}

// NewRouter builds a router over k shards. A nil fn installs
// DefaultFunc(seed, k); seed is ignored otherwise.
func NewRouter(k int, seed uint64, fn Func) (*Router, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, have %d", k)
	}
	if fn == nil {
		fn = DefaultFunc(seed, k)
	}
	return &Router{k: k, fn: fn}, nil
}

// Shards returns the shard count K.
func (r *Router) Shards() int { return r.k }

// Route returns cmd's shard, rejecting an out-of-range Func result.
func (r *Router) Route(cmd Value) (int, error) {
	s := r.fn(cmd)
	if s < 0 || s >= r.k {
		return 0, fmt.Errorf("shard: routing function sent command %d to shard %d, want [0, %d)", cmd, s, r.k)
	}
	return s, nil
}

// Drive runs k shard drivers concurrently — one goroutine per shard over
// whatever drive loop run wraps — and joins them all before returning
// (the bounded-join contract the fabricconc analyzer enforces). Each
// shard's error lands at its index in the returned slice.
//
// meta, when ≥ 0, names the cross-shard ordering barrier's meta shard:
// it runs first, on the caller's goroutine, and every shard s with
// fenced[s] set waits for its completion before starting — the meta
// shard's committed entries are thereby sequenced before every entry of
// the shards they fence. Shards left unfenced run concurrently with the
// meta shard. With meta < 0 the fence is inert and all k shards run
// concurrently.
func Drive(k int, meta int, fenced []bool, run func(s int) error) []error {
	errs := make([]error, k)
	metaDone := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		if s == meta {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if meta >= 0 && s < len(fenced) && fenced[s] {
				<-metaDone
			}
			errs[s] = run(s)
		}(s)
	}
	if meta >= 0 && meta < k {
		errs[meta] = run(meta)
	}
	close(metaDone)
	wg.Wait()
	return errs
}

// mix chains the coordinates through splitmix64 into one draw — the
// fabric.Mem construction, so distinct (seed, command) pairs cannot
// collide the way shifted XOR packing would.
func mix(seed uint64, coords ...uint64) uint64 {
	h := splitmix64(seed)
	for _, c := range coords {
		h = splitmix64(h ^ c)
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer — a tiny, high-quality bit
// mixer, here the whole PRNG since every draw is keyed by coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
